"""Byte-accurate memory ledger: where do the process's bytes live?

The paper's whole claim is *memory* efficiency — a condensed buffer that
fits an on-device budget — so the observability layer needs a byte axis,
not just a time axis.  The ledger keeps **named accounts** covering every
long-lived allocation class in the repo:

=====================  ====================================================
account                what it holds
=====================  ====================================================
``buffer.synthetic``   :class:`~repro.buffer.buffer.SyntheticBuffer` payloads
``buffer.synthetic.factorized``  factorized (reduced-resolution) synthetic
                       payloads (:class:`~repro.buffer.factorized.
                       FactorizedSyntheticBuffer`)
``buffer.raw``         :class:`~repro.buffer.buffer.RawBuffer` payloads
``model.params``       deployed/scratch model parameter arrays
``shm.pack``           shared-memory sweep packs (owner side)
``workspace.arena``    pooled scratch buffers (pull provider)
``cache.conv_plans``   ConvPlan LRU resident bytes (pull provider)
``cache.step_cache``   StepCache pinned column buffers (pull provider)
``disk.checkpoints``   checkpoint files written this process (bytes on disk)
=====================  ====================================================

Two registration styles:

* **Recorded entries** (:meth:`MemoryLedger.record` / :meth:`drop`) for
  objects with an owner and a lifetime — buffers, models, shm packs.
  :func:`track_object` couples an entry to an object's lifetime via
  ``weakref.finalize`` so a garbage-collected buffer can never leak its
  ledger bytes.
* **Pull providers** (:meth:`MemoryLedger.register_provider`) for caches
  that already keep their own byte counts (arena, plan cache, step cache):
  the ledger polls them only when a snapshot is requested, so the hot path
  pays nothing.

On top of the accounts: a process-wide **high-water gauge** (updated on
every record and snapshot), **RSS sampling** (``/proc/self/statm`` with a
``getrusage`` fallback, throttled for periodic emission), and an optional
``tracemalloc``-backed **deep audit** that cross-checks ledger deltas
against real interpreter allocations (numpy registers its payloads with
tracemalloc, so tracked-account deltas must agree within tolerance).

Everything here is stdlib-only and import-light: hot modules (kernels,
workspace, buffers) import this module directly without dragging in the
rest of the telemetry layer.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "MemoryLedger",
    "DeepAuditReport",
    "default_ledger",
    "track_object",
    "DISK_ACCOUNT_PREFIX",
]

#: Accounts under this prefix measure bytes *on disk*, not resident memory;
#: they are excluded from RAM totals, span deltas, and the deep audit.
DISK_ACCOUNT_PREFIX = "disk."

_KEY_COUNTER = itertools.count()


@dataclass
class DeepAuditReport:
    """Outcome of one :meth:`MemoryLedger.deep_audit` region."""

    ledger_delta: int = 0
    traced_delta: int = 0
    tolerance: float = 0.10
    account_deltas: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Ledger and tracemalloc agree within tolerance of the larger."""
        scale = max(abs(self.ledger_delta), abs(self.traced_delta), 1)
        return abs(self.ledger_delta - self.traced_delta) <= (
            self.tolerance * scale)


class MemoryLedger:
    """Named byte accounts + high-water gauge + RSS sampling + deep audit."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # account -> key -> nbytes (recorded entries).
        self._accounts: dict[str, dict[str, int]] = {}
        # account -> recorded total (kept incrementally for O(1) reads).
        self._recorded: dict[str, int] = {}
        # account -> zero-arg callable returning current bytes (pulled).
        self._providers: dict[str, Callable[[], int]] = {}
        # Recorded RAM bytes (disk.* excluded); single int so span deltas
        # are one attribute read on the hot path.
        self._ram_total = 0
        self.high_water_bytes = 0
        self.tracking = True
        self._last_rss_monotonic = 0.0

    # -- recorded entries --------------------------------------------------
    def record(self, account: str, key: str, nbytes: int) -> None:
        """Set (or update) one entry's byte count under ``account``."""
        if not self.tracking:
            return
        nbytes = int(nbytes)
        with self._lock:
            entries = self._accounts.setdefault(account, {})
            delta = nbytes - entries.get(key, 0)
            entries[key] = nbytes
            self._recorded[account] = self._recorded.get(account, 0) + delta
            if not account.startswith(DISK_ACCOUNT_PREFIX):
                self._ram_total += delta
                if self._ram_total > self.high_water_bytes:
                    self.high_water_bytes = self._ram_total

    def drop(self, account: str, key: str) -> None:
        """Remove one entry; unknown keys are ignored (finalizer-safe)."""
        with self._lock:
            entries = self._accounts.get(account)
            if not entries or key not in entries:
                return
            nbytes = entries.pop(key)
            self._recorded[account] = self._recorded.get(account, 0) - nbytes
            if not account.startswith(DISK_ACCOUNT_PREFIX):
                self._ram_total -= nbytes

    # -- pull providers ----------------------------------------------------
    def register_provider(self, account: str,
                          fn: Callable[[], int]) -> None:
        """Install (or replace) a pull-style byte source for ``account``."""
        with self._lock:
            self._providers[account] = fn

    def _pull_providers(self) -> dict[str, int]:
        with self._lock:
            providers = dict(self._providers)
        pulled: dict[str, int] = {}
        for account, fn in providers.items():
            try:
                pulled[account] = int(fn())
            except Exception:  # a torn-down cache must not break snapshots
                pulled[account] = 0
        return pulled

    # -- totals ------------------------------------------------------------
    @property
    def ram_recorded_bytes(self) -> int:
        """Recorded RAM bytes (no provider pulls) — hot-path safe."""
        return self._ram_total

    def totals(self, *, pull: bool = True) -> dict[str, int]:
        """Bytes per account: recorded entries plus (optionally) providers."""
        with self._lock:
            out = {account: total
                   for account, total in self._recorded.items() if total}
        if pull:
            out.update(self._pull_providers())
            ram = sum(v for a, v in out.items()
                      if not a.startswith(DISK_ACCOUNT_PREFIX))
            with self._lock:
                if ram > self.high_water_bytes:
                    self.high_water_bytes = ram
        return out

    def tracked_ram_bytes(self, *, pull: bool = True) -> int:
        """Total tracked resident bytes (disk accounts excluded)."""
        return sum(v for a, v in self.totals(pull=pull).items()
                   if not a.startswith(DISK_ACCOUNT_PREFIX))

    def reset_high_water(self) -> int:
        """Rebase the high-water gauge to the *current* recorded total.

        The gauge is process-wide, so in a serial sweep a later, smaller
        configuration would otherwise inherit the peak of an earlier, larger
        one.  Callers that want per-run peaks (``run_method``) call this at
        run start; the returned value is the new baseline.
        """
        with self._lock:
            self.high_water_bytes = self._ram_total
            return self.high_water_bytes

    def entry_counts(self) -> dict[str, int]:
        """Recorded entries per account (providers have no entries)."""
        with self._lock:
            return {account: len(entries)
                    for account, entries in self._accounts.items() if entries}

    # -- process-level gauges ------------------------------------------------
    @staticmethod
    def rss_bytes() -> int:
        """Current resident set size (0 when the platform hides it)."""
        try:
            with open("/proc/self/statm", encoding="ascii") as fh:
                pages = int(fh.read().split()[1])
            return pages * os.sysconf("SC_PAGESIZE")
        except (OSError, ValueError, IndexError):
            pass
        try:
            import resource
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:  # pragma: no cover - exotic platform
            return 0

    @staticmethod
    def peak_rss_bytes() -> int:
        """Lifetime peak RSS of the process (ru_maxrss; 0 if unavailable)."""
        try:
            import resource
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:  # pragma: no cover - exotic platform
            return 0

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready dict: accounts, totals, high water, RSS."""
        accounts = self.totals()
        ram = sum(v for a, v in accounts.items()
                  if not a.startswith(DISK_ACCOUNT_PREFIX))
        return {
            "accounts": accounts,
            "tracked_bytes": ram,
            "high_water_bytes": self.high_water_bytes,
            "rss_bytes": self.rss_bytes(),
            "peak_rss_bytes": self.peak_rss_bytes(),
        }

    def maybe_sample_rss(self, *, min_interval_s: float = 0.5) -> bool:
        """Emit a throttled ``rss`` telemetry event; returns whether it fired.

        Call sites can invoke this every segment/iteration — at most one
        event per ``min_interval_s`` actually reads ``/proc`` and reaches
        the sink, keeping periodic RSS sampling cheap on fast loops.
        """
        now = time.monotonic()
        if now - self._last_rss_monotonic < min_interval_s:
            return False
        self._last_rss_monotonic = now
        from . import telemetry  # local import: telemetry imports this module
        registry = telemetry.get_telemetry()
        if not registry.enabled:
            return False
        registry.event("rss", rss_bytes=self.rss_bytes(),
                       tracked_bytes=self.tracked_ram_bytes(pull=False),
                       high_water_bytes=self.high_water_bytes)
        return True

    # -- deep audit ----------------------------------------------------------
    @contextlib.contextmanager
    def deep_audit(self, *, tolerance: float = 0.10):
        """Cross-check ledger deltas against tracemalloc over a region.

        numpy registers array payloads with tracemalloc, so over a region
        whose allocations are dominated by tracked objects (buffers,
        models) the ledger's RAM delta and the interpreter's traced delta
        must agree within ``tolerance``.  Starts tracing if needed and
        restores the previous tracing state on exit.
        """
        import tracemalloc

        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        before_accounts = self.totals()
        traced_before, _ = tracemalloc.get_traced_memory()
        report = DeepAuditReport(tolerance=tolerance)
        try:
            yield report
        finally:
            traced_after, _ = tracemalloc.get_traced_memory()
            after_accounts = self.totals()
            if started_here:
                tracemalloc.stop()
            report.traced_delta = traced_after - traced_before
            deltas = {}
            for account in set(before_accounts) | set(after_accounts):
                delta = (after_accounts.get(account, 0)
                         - before_accounts.get(account, 0))
                if delta:
                    deltas[account] = delta
            report.account_deltas = deltas
            report.ledger_delta = sum(
                v for a, v in deltas.items()
                if not a.startswith(DISK_ACCOUNT_PREFIX))


#: Process-wide ledger the instrumented allocation sites record into.
default_ledger = MemoryLedger()


def track_object(account: str, obj: Any, nbytes: int,
                 ledger: MemoryLedger | None = None) -> str:
    """Record ``nbytes`` under ``account`` for ``obj``'s lifetime.

    The entry is dropped automatically when ``obj`` is garbage collected
    (``weakref.finalize``), so tracked allocations can never outlive their
    owners in the ledger.  Returns the entry key.
    """
    ledger = ledger if ledger is not None else default_ledger
    key = f"obj-{next(_KEY_COUNTER)}"
    ledger.record(account, key, nbytes)
    weakref.finalize(obj, ledger.drop, account, key)
    return key
