"""Structured telemetry for the DECO pipeline.

Three pieces:

* :mod:`repro.obs.telemetry` — the process-wide registry of counters /
  gauges / histograms and nestable ``span`` timers; compiled down to
  no-ops while disabled so instrumented hot paths stay free.
* :mod:`repro.obs.sinks` — pluggable event sinks; the default run layout
  is one ``trace.jsonl`` per run directory.
* :mod:`repro.obs.summary` — renders a trace back into the repo's
  standard report tables (``repro obs summarize``).
* :mod:`repro.obs.memory` — the byte-accurate memory ledger: named
  accounts for every long-lived allocation class, high-water gauge, RSS
  sampling, tracemalloc deep audit.
* :mod:`repro.obs.trace` — Chrome trace-event export (``repro obs
  trace``): span flame + memory counter tracks + learner instant events,
  Perfetto-loadable.
* :mod:`repro.obs.health` — numerical-health sentinels: sampled finite
  checks at the matcher/optimizer hand-off points with ``record`` /
  ``skip-step`` / ``raise`` policies and an EWMA loss tripwire.
* :mod:`repro.obs.report` — self-contained single-file HTML run report
  (``repro obs report``) with a ``--json`` twin.

Hot-path call sites import the module functions (``obs.span``,
``obs.event``, ``obs.enabled``) rather than a registry object, so the
disabled path is a single flag check.
"""

from .export import (aggregate_worker_counters, config_digest,
                     merge_worker_shards, shard_path, worker_telemetry)
from .health import (EwmaTripwire, HealthError, HealthIncident,
                     HealthMonitor, get_monitor, health_stats, reset_health,
                     scoped_policy)
from .memory import (DeepAuditReport, MemoryLedger, default_ledger,
                     track_object)
from .report import build_report_data, render_report_html, write_report
from .progress import SweepProgress
from .regress import (append_history, check_regressions, compare_history,
                      format_regress_report, load_history,
                      metrics_from_snapshot, seed_history_from_snapshot)
from .sinks import (EventSink, JsonlSink, ListSink, NullSink,
                    read_jsonl_tolerant)
from .telemetry import (Telemetry, collect_runtime_counters, counter, disable,
                        enable, enabled, event, gauge, get_telemetry, observe,
                        reset, scoped_telemetry, shutdown, snapshot, span)
from .summary import (load_events, load_events_with_stats, summarize_events,
                      summarize_events_data, summarize_trace,
                      summarize_trace_json)
from .trace import (build_trace, export_trace, trace_stats, validate_trace)

__all__ = [
    "Telemetry",
    "get_telemetry",
    "enable",
    "disable",
    "enabled",
    "span",
    "counter",
    "gauge",
    "observe",
    "event",
    "snapshot",
    "reset",
    "shutdown",
    "collect_runtime_counters",
    "EventSink",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "load_events",
    "summarize_events",
    "summarize_events_data",
    "summarize_trace",
    "summarize_trace_json",
    "MemoryLedger",
    "DeepAuditReport",
    "default_ledger",
    "track_object",
    "build_trace",
    "export_trace",
    "validate_trace",
    "trace_stats",
    "HealthError",
    "HealthIncident",
    "HealthMonitor",
    "EwmaTripwire",
    "get_monitor",
    "health_stats",
    "reset_health",
    "scoped_policy",
    "build_report_data",
    "render_report_html",
    "write_report",
]
