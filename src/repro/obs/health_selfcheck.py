"""End-to-end numerical-health self-check (health leg of repro-check).

Run as ``python -m repro.obs.health_selfcheck``.  Proves the sentinels
catch real corruption where it happens, stay silent on healthy runs, and
that the run report renders from a real telemetry directory:

1. **Injected NaN, every policy.**  A matcher pass against a model whose
   first weight is poisoned with NaN must be detected *within the same
   segment* under each policy: ``record`` logs incidents carrying the
   op / segment / iteration and finishes the pass; ``skip-step`` drops
   the poisoned updates so the synthetic buffer stays finite; ``raise``
   throws :class:`~repro.obs.health.HealthError` with the same context.
2. **Clean run is silent.**  The identical pass with a healthy model
   records zero incidents — the sentinels never cry wolf.
3. **Run report.**  A traced micro learner run renders through
   ``repro obs report``: one self-contained HTML file (no ``<script``,
   no ``href=``/``src=`` fetches) whose ``--json`` twin round-trips
   through ``json.loads``; the Chrome trace export of the same run
   validates and carries instant events.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

import numpy as np

INJECT_SEGMENT = 7


class SelfCheckFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SelfCheckFailure(message)


def _fixture(poison: bool):
    """(buffer, classes, x, y, factory) micro condense fixture."""
    from ..buffer.buffer import SyntheticBuffer
    from ..nn.convnet import ConvNet

    rng = np.random.default_rng(0)
    shape, classes = (1, 8, 8), 3
    buffer = SyntheticBuffer(classes, 2, shape)
    buffer.init_random(np.random.default_rng(1), scale=0.5)
    x = rng.standard_normal((24, *shape)).astype(np.float32)
    y = np.repeat(np.arange(classes), 8).astype(np.int64)

    def factory(factory_rng):
        net = ConvNet(1, classes, 8, width=4, depth=2,
                      rng=np.random.default_rng(2))
        if poison:
            net.parameters()[0].data.flat[0] = np.nan
        return net

    return buffer, list(range(classes)), x, y, factory


def _condense(policy: str):
    """One poisoned matcher pass under ``policy``; returns the monitor."""
    from ..condensation.one_step import OneStepMatcher
    from .health import get_monitor, scoped_policy

    buffer, classes, x, y, factory = _fixture(poison=True)
    monitor = get_monitor()
    with scoped_policy(policy):
        monitor.reset()
        with monitor.segment_scope(INJECT_SEGMENT):
            OneStepMatcher(iterations=2, alpha=0.0).condense(
                buffer, classes, x, y, None, model_factory=factory,
                rng=np.random.default_rng(3))
        incidents = list(monitor.incidents)
        monitor.reset()
    return buffer, incidents


def _check_injection() -> None:
    from .health import HealthError, get_monitor, scoped_policy

    print("[health-selfcheck] injected NaN under policy=record")
    _, incidents = _condense("record")
    _check(bool(incidents), "record policy logged no incidents for a "
                            "NaN-poisoned matcher pass")
    first = incidents[0]
    _check(first.op.startswith(("matcher.", "fd.", "optim.")),
           f"incident op {first.op!r} does not name a matcher hand-off")
    _check(first.segment == INJECT_SEGMENT,
           f"incident segment {first.segment!r} != {INJECT_SEGMENT} — not "
           f"attributed within the injected segment")
    _check(first.iteration is not None,
           "incident carries no iteration context")
    _check(first.kind == "nonfinite", f"unexpected kind {first.kind!r}")

    print("[health-selfcheck] injected NaN under policy=skip-step")
    buffer, incidents = _condense("skip-step")
    _check(bool(incidents), "skip-step policy logged no incidents")
    _check(bool(np.isfinite(buffer.images).all()),
           "skip-step let NaN reach the synthetic buffer")

    print("[health-selfcheck] injected NaN under policy=raise")
    from ..condensation.one_step import OneStepMatcher
    buffer, classes, x, y, factory = _fixture(poison=True)
    monitor = get_monitor()
    try:
        with scoped_policy("raise"):
            monitor.reset()
            with monitor.segment_scope(INJECT_SEGMENT):
                OneStepMatcher(iterations=2, alpha=0.0).condense(
                    buffer, classes, x, y, None, model_factory=factory,
                    rng=np.random.default_rng(3))
        raise SelfCheckFailure("raise policy did not raise on injected NaN")
    except HealthError as exc:
        _check(exc.segment == INJECT_SEGMENT,
               f"HealthError segment {exc.segment!r} != {INJECT_SEGMENT}")
        _check(bool(exc.op), "HealthError carries no op")
        _check(exc.iteration is not None,
               "HealthError carries no iteration")
    finally:
        monitor.reset()


def _check_clean() -> None:
    from ..condensation.one_step import OneStepMatcher
    from .health import get_monitor, scoped_policy

    print("[health-selfcheck] clean pass records zero incidents")
    buffer, classes, x, y, factory = _fixture(poison=False)
    monitor = get_monitor()
    with scoped_policy("record"):
        monitor.reset()
        OneStepMatcher(iterations=2, alpha=0.0).condense(
            buffer, classes, x, y, None, model_factory=factory,
            rng=np.random.default_rng(3))
        count = len(monitor.incidents)
        checks = monitor.stats()["checks"]
        monitor.reset()
    _check(count == 0, f"clean condense raised {count} incident(s)")
    _check(checks > 0, "clean condense ran zero sentinel checks — the "
                       "silence would be vacuous")


def _check_report() -> None:
    from .. import obs
    from ..cli import main as cli_main
    from ..experiments.common import prepare_experiment
    from ..experiments.grid import run_method_grid
    from .sinks import JsonlSink
    from .telemetry import Telemetry, scoped_telemetry

    print("[health-selfcheck] traced micro run -> report + trace export")
    with tempfile.TemporaryDirectory(prefix="repro-health-check-") as tmp:
        run_dir = pathlib.Path(tmp) / "trace"
        prepared = prepare_experiment("core50", "micro", seed=0)
        registry = Telemetry()
        registry.enable(JsonlSink.for_run_dir(run_dir))
        with scoped_telemetry(registry):
            run_method_grid(prepared, [{"method": "deco", "ipc": 1,
                                        "seed": 0}], jobs=1)
        registry.shutdown()

        html_out = run_dir / "report.html"
        _check(cli_main(["obs", "report", str(run_dir)]) == 0,
               "repro obs report exited non-zero")
        _check(html_out.is_file(), f"no report at {html_out}")
        html = html_out.read_text(encoding="utf-8")
        for needle in ("<script", "href=", "src="):
            _check(needle not in html,
                   f"report is not self-contained: found {needle!r}")
        _check("Condensation quality" in html,
               "report lacks the condensation-quality table")
        _check("No health incidents recorded" in html,
               "clean micro run should render zero health incidents")

        json_out = run_dir / "report.json"
        _check(cli_main(["obs", "report", str(run_dir), "--json"]) == 0,
               "repro obs report --json exited non-zero")
        doc = json.loads(json_out.read_text(encoding="utf-8"))
        _check(doc["health"]["count"] == 0,
               f"JSON report counts {doc['health']['count']} incidents "
               f"on a clean run")
        _check("quality" in doc["tables"],
               "JSON report lacks the quality table")
        _check(bool(doc["timelines"]), "JSON report carries no timelines")

        from .trace import build_trace, trace_stats, validate_trace
        from .summary import load_events_with_stats
        events, _ = load_events_with_stats(run_dir)
        trace = build_trace(events)
        problems = validate_trace(trace)
        _check(not problems, f"trace export invalid: {problems[:3]}")
        stats = trace_stats(trace)
        _check(stats["instant_events"] > 0,
               "trace export carries no instant events")
    # The run above mutated the process-global registry's sink; leave the
    # default registry untouched for whoever runs after us.
    obs.shutdown()
    obs.reset()


def main() -> int:
    t0 = time.perf_counter()
    _check_injection()
    _check_clean()
    _check_report()
    print(f"[health-selfcheck] OK: sentinels attribute injected NaN, stay "
          f"silent when clean, and the run report renders "
          f"({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SelfCheckFailure as exc:
        print(f"[health-selfcheck] FAILED: {exc}")
        sys.exit(1)
