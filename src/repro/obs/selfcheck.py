"""End-to-end cross-process observability self-check (obs leg of repro-check).

Run as ``python -m repro.obs.selfcheck``.  Exercises the worker-telemetry
pipeline the way a real parallel run would:

1. **Serial reference** — a tiny 2-point grid on the micro profile runs
   with ``jobs=1`` under a scoped fresh registry; its counter snapshot is
   the ground truth for what the tasks themselves emit.
2. **Parallel run** — the same grid with ``jobs=2`` and telemetry into a
   temporary run directory: each worker writes a per-task shard, the
   parent merges them into ``workers.jsonl``.
3. **Checks** — one shard per grid point exists; the merged file exists
   and summarizes; the aggregated worker counters equal the serial
   reference on every task-emitted counter; re-merging the same shards is
   byte-identical.
4. **Regression dry-run** — ``repro obs regress --dry-run`` against the
   repo's bench history must exit cleanly (regressions are reported, not
   fatal, in this leg — the bench pass owns the hard verdict).

The intra-op pool is forced on (2 threads, shard threshold 1) so the
tasks actually emit ``parallel.*`` counters and the aggregate comparison
is never vacuous.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

DATASET = "core50"
PROFILE = "micro"
CONFIGS = (
    {"method": "fifo", "ipc": 1, "seed": 0},
    {"method": "deco", "ipc": 1, "seed": 0},
)


class SelfCheckFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SelfCheckFailure(message)


def main() -> int:
    from ..experiments.common import prepare_experiment
    from ..experiments.grid import run_method_grid
    from ..parallel import intra_op
    from .export import (SHARD_DIRNAME, WORKERS_FILENAME,
                         aggregate_worker_counters)
    from .sinks import JsonlSink, read_jsonl_tolerant
    from .summary import summarize_trace
    from .telemetry import Telemetry, scoped_telemetry

    t0 = time.perf_counter()
    configs = [dict(c) for c in CONFIGS]
    saved_threads = intra_op.get_num_threads()
    saved_threshold = intra_op.shard_threshold()
    intra_op.set_num_threads(2)
    intra_op.set_shard_threshold(1)
    try:
        print(f"[obs-selfcheck] serial reference: {len(configs)}-point grid "
              f"on {DATASET}/{PROFILE}, jobs=1")
        prepared = prepare_experiment(DATASET, PROFILE, seed=0)
        serial = Telemetry()
        serial.enable()
        with scoped_telemetry(serial):
            run_method_grid(prepared, configs, jobs=1)
        reference = serial.snapshot()["counters"]
        _check(any(name.startswith("parallel.") for name in reference),
               "serial reference emitted no parallel.* counters — the "
               "aggregate comparison would be vacuous")
        _check(any(name.startswith("health.") for name in reference),
               "serial reference emitted no health.* counters — sentinel "
               "parity would be vacuous")
        _check(any(name.startswith("quality.") for name in reference),
               "serial reference emitted no quality.* counters — "
               "condensation-quality parity would be vacuous")

        with tempfile.TemporaryDirectory(prefix="repro-obs-check-") as tmp:
            run_dir = pathlib.Path(tmp) / "trace"
            print("[obs-selfcheck] parallel run: jobs=2 with telemetry "
                  f"into {run_dir}")
            parent = Telemetry()
            parent.enable(JsonlSink.for_run_dir(run_dir))
            with scoped_telemetry(parent):
                run_method_grid(prepared, configs, jobs=2)
            parent.shutdown()

            shard_dir = run_dir / SHARD_DIRNAME
            shards = sorted(shard_dir.glob("*.jsonl"))
            _check(len(shards) == len(configs),
                   f"expected {len(configs)} worker shards, found "
                   f"{len(shards)} in {shard_dir}")
            merged = run_dir / WORKERS_FILENAME
            _check(merged.is_file(), f"no merged {WORKERS_FILENAME}")

            print("[obs-selfcheck] merge determinism + counter totals")
            first_bytes = merged.read_bytes()
            from .export import merge_worker_shards
            merge_worker_shards(run_dir)
            _check(merged.read_bytes() == first_bytes,
                   "re-merging the same shards changed workers.jsonl")

            events, skipped = read_jsonl_tolerant(merged)
            _check(skipped == 0, f"{skipped} malformed lines in a clean "
                                 f"merge")
            totals = aggregate_worker_counters(events)
            _check(bool(totals), "merged shards carry no worker counters")
            for name, value in sorted(totals.items()):
                _check(reference.get(name) == value,
                       f"counter {name!r}: workers total {value!r} != "
                       f"serial {reference.get(name)!r}")
            for name in reference:
                _check(name in totals,
                       f"serial counter {name!r} missing from the worker "
                       f"aggregate")

            summary = summarize_trace(run_dir)
            _check("Worker telemetry (merged shards)" in summary,
                   "summarize did not render the per-worker breakdown")
    finally:
        intra_op.set_num_threads(saved_threads)
        intra_op.set_shard_threshold(saved_threshold)

    print("[obs-selfcheck] bench-history regression dry-run")
    from ..cli import main as cli_main
    _check(cli_main(["obs", "regress", "--dry-run"]) == 0,
           "obs regress --dry-run did not exit cleanly")

    print(f"[obs-selfcheck] OK: jobs=2 telemetry aggregates match the "
          f"serial run ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SelfCheckFailure as exc:
        print(f"[obs-selfcheck] FAILED: {exc}")
        sys.exit(1)
