"""DECO reproduction: memory-efficient on-device learning via dataset condensation.

This package is a from-scratch reproduction of "Enabling Memory-Efficient
On-Device Learning via Dataset Condensation" (Xu et al., DATE 2025) on a
pure-numpy substrate.  Top-level subpackages:

* :mod:`repro.nn` — autodiff engine, ConvNet/MLP backbones, optimizers, losses.
* :mod:`repro.data` — synthetic dataset generators and non-i.i.d. stream builders.
* :mod:`repro.buffer` — replay buffers and selection baselines.
* :mod:`repro.condensation` — DECO one-step matching plus DC/DSA/DM baselines.
* :mod:`repro.core` — pseudo-labeling, the DECO algorithm, learners, evaluation.
* :mod:`repro.experiments` — runners that regenerate each paper table/figure.
* :mod:`repro.obs` — structured telemetry: spans, counters, JSONL traces.
"""

__version__ = "1.0.0"

from . import (buffer, condensation, core, data, experiments, nn, obs,
               parallel, utils)

__all__ = ["nn", "data", "buffer", "condensation", "core", "experiments",
           "obs", "utils", "__version__"]
