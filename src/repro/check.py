"""Single-command verification: tests + perf smoke + micro-bench smoke.

``repro-check`` (registered in ``pyproject.toml``) is the ``make check``
equivalent for this repo.  It runs, in order:

1. the tier-1 test suite (``python -m pytest -q``);
2. the ``perf_smoke`` wall-clock tripwires (``pytest -m perf_smoke``);
3. the kernel + parallel suites again with the intra-op thread pool forced
   on (``REPRO_NUM_THREADS=4``, ``REPRO_SHARD_MIN_BATCH=8``) so the
   sharded code paths are covered even on single-core boxes;
4. the crash/resume selfcheck (``python -m repro.persist.selfcheck``): a
   2-job grid is crashed after its first completed point and resumed; the
   merged results must be bit-identical to a clean serial run;
5. the observability selfcheck (``python -m repro.obs.selfcheck``): a
   2-job grid runs with telemetry on; its merged worker shards must
   aggregate to the serial run's counters, byte-deterministically;
5b. the numerical-health selfcheck (``python -m
   repro.obs.health_selfcheck``): an injected NaN in a matcher pass must
   be detected and attributed within one segment under every policy, a
   clean micro run must record zero incidents, and ``repro obs report``
   must render a self-contained HTML report from its telemetry;
6. the fused-FD selfcheck (``python -m repro.condensation.fd_selfcheck``):
   the lane-grouped ±ε evaluator must be byte-identical to the sequential
   two-pass path with clean probe/verification counters, and a micro
   condense segment must produce identical pixels fused vs. unfused;
7. the memory-ledger selfcheck (``python -m repro.obs.ledger_selfcheck``):
   ledger byte accounts must agree with tracemalloc within tolerance,
   jobs=2 memory footprints must equal serial, and exported Chrome traces
   must pass schema validation with memory counter tracks;
8. the tree-reduction selfcheck
   (``python -m repro.parallel.reduce_selfcheck``): the batch-reduced
   gradients, norm statistics, and loss sums must be byte-identical at
   threads=1 vs threads=4 on the learner-test shapes (engaging the tree
   where the probes admit it, falling back honestly where they don't),
   and a micro DECO learner segment must reproduce its serial
   fingerprint;
9. the factorized-storage selfcheck
   (``python -m repro.buffer.factorized_selfcheck``): the f=2 buffer's
   payload must be exactly ``ceil(H/f)*ceil(W/f)/(H*W)`` of the f=1
   payload, ``encode_grad`` must be the exact decode transpose, an f=2
   condense segment must store byte-identical payloads under both
   ``REPRO_FD_FUSE`` settings, and state round-trips must be
   byte-for-byte with mismatched decode factors rejected;
10. a one-repeat pass of the micro-benchmarks (kernel cases, one condense
   segment, the fused-FD comparison, the parallel scaling matrix, the
   serial-vs-tree reduction comparison, and the f=1 vs f=2 factorized
   accuracy-per-MiB comparison), which also refreshes the counter
   snapshots attached to ``bench_results/micro_kernels.json`` and appends
   to the bench history;
11. a bench-history regression dry-run (``python -m repro obs regress
   --dry-run``): the trajectory verdict is printed; regressions are
   reported but only fail ``repro-check`` when ``--strict-bench`` is set.

Steps 2-3 need the repo checkout (``tests/`` and ``benchmarks/`` are not
installed); they are skipped with a notice when run from elsewhere.

Usage::

    PYTHONPATH=src python -m repro.check [--skip-bench] [--skip-tests]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

__all__ = ["main"]


def _repo_root() -> pathlib.Path | None:
    """The repo checkout to verify: cwd if it has tests/, else the source tree."""
    for candidate in (pathlib.Path.cwd(),
                      pathlib.Path(__file__).resolve().parents[2]):
        if (candidate / "tests").is_dir() and (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _run(cmd: list[str], cwd: pathlib.Path, title: str,
         extra_env: dict[str, str] | None = None) -> int:
    print(f"== {title}: {' '.join(cmd)}")
    env = dict(os.environ)
    src = str(cwd / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    if extra_env:
        env.update(extra_env)
    result = subprocess.run(cmd, cwd=cwd, env=env)
    status = "ok" if result.returncode == 0 else f"FAILED ({result.returncode})"
    print(f"== {title}: {status}\n")
    return result.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the pytest suites")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the micro-benchmark smoke pass")
    parser.add_argument("--bench-repeats", type=int, default=1,
                        help="best-of-N repeats for the micro benches")
    parser.add_argument("--strict-bench", action="store_true",
                        help="fail repro-check on bench-history "
                             "regressions instead of only reporting them")
    args = parser.parse_args(argv)

    root = _repo_root()
    if root is None:
        print("repro-check: no repo checkout found (tests/ + pyproject.toml); "
              "run from the repository root")
        return 2

    failures = 0
    if not args.skip_tests:
        failures += _run([sys.executable, "-m", "pytest", "-q"], root,
                         "tier-1 tests") != 0
        failures += _run([sys.executable, "-m", "pytest", "-q",
                          "-m", "perf_smoke"], root, "perf smoke") != 0
        # Parallel matrix leg: rerun the kernel + parallel suites with the
        # intra-op pool forced on (4 threads, aggressive shard threshold) so
        # the sharded code paths are exercised even where the default
        # configuration would stay serial.
        failures += _run([sys.executable, "-m", "pytest", "-q",
                          "tests/parallel", "tests/nn"], root,
                         "parallel matrix (threads=4)",
                         extra_env={"REPRO_NUM_THREADS": "4",
                                    "REPRO_SHARD_MIN_BATCH": "8"}) != 0
        # Resume leg: crash a 2-job grid after its first completed point,
        # then resume it and assert the merged results are bit-identical
        # to a clean serial run (see repro.persist.selfcheck).
        failures += _run([sys.executable, "-m", "repro.persist.selfcheck"],
                         root, "crash/resume selfcheck") != 0
        # Observability leg: a 2-job grid with telemetry on must produce
        # merged worker shards whose aggregated counters equal the serial
        # run's (see repro.obs.selfcheck).
        failures += _run([sys.executable, "-m", "repro.obs.selfcheck"],
                         root, "observability selfcheck") != 0
        # Health leg: an injected NaN in a matcher pass must be caught and
        # attributed within one segment under every policy, a clean micro
        # run must record zero incidents, and the run report must render
        # self-contained (see repro.obs.health_selfcheck).
        failures += _run([sys.executable, "-m",
                          "repro.obs.health_selfcheck"],
                         root, "numerical-health selfcheck") != 0
        # Fused-FD leg: the lane-grouped ±ε evaluator must reproduce the
        # sequential bytes with clean verification counters, and fused vs.
        # unfused segments must condense identical pixels (see
        # repro.condensation.fd_selfcheck).
        failures += _run([sys.executable, "-m",
                          "repro.condensation.fd_selfcheck"],
                         root, "fused-FD selfcheck") != 0
        # Ledger leg: the memory ledger must agree with tracemalloc, the
        # jobs=2 footprints must equal serial, and both runs must export
        # schema-valid Perfetto traces with memory counter tracks (see
        # repro.obs.ledger_selfcheck).
        failures += _run([sys.executable, "-m",
                          "repro.obs.ledger_selfcheck"],
                         root, "memory ledger + trace export selfcheck") != 0
        # Reduction leg: tree-reduced gradients/statistics must be
        # byte-identical to the serial reductions at every thread count,
        # with honest fallback accounting (see
        # repro.parallel.reduce_selfcheck).
        failures += _run([sys.executable, "-m",
                          "repro.parallel.reduce_selfcheck"],
                         root, "deterministic reduction selfcheck") != 0
        # Factorized-storage leg: the f=2 buffer's byte footprint must be
        # exactly 1/f^2 of full resolution, decode/encode_grad must be an
        # exact transpose pair, and an f=2 segment must be byte-identical
        # under both REPRO_FD_FUSE settings (see
        # repro.buffer.factorized_selfcheck).
        failures += _run([sys.executable, "-m",
                          "repro.buffer.factorized_selfcheck"],
                         root, "factorized storage selfcheck") != 0

    if not args.skip_bench:
        bench_dir = root / "benchmarks" / "micro"
        if bench_dir.is_dir():
            repeats = str(args.bench_repeats)
            failures += _run([sys.executable,
                              str(bench_dir / "bench_kernels.py"),
                              "--repeats", repeats], root,
                             "micro-bench kernels") != 0
            failures += _run([sys.executable,
                              str(bench_dir / "bench_condense_step.py"),
                              "--repeats", repeats], root,
                             "micro-bench condense step") != 0
            failures += _run([sys.executable,
                              str(bench_dir / "bench_fd_fuse.py"),
                              "--repeats", repeats], root,
                             "micro-bench fused FD") != 0
            failures += _run([sys.executable,
                              str(bench_dir / "bench_parallel.py"),
                              "--repeats", repeats], root,
                             "micro-bench parallel scaling") != 0
            failures += _run([sys.executable,
                              str(bench_dir / "bench_reduce.py"),
                              "--repeats", repeats], root,
                             "micro-bench tree reductions") != 0
            failures += _run([sys.executable,
                              str(bench_dir / "bench_factorized.py")], root,
                             "micro-bench factorized storage") != 0
            # Trajectory verdict over the history the benches just
            # appended to.  A one-repeat smoke pass is noisy, so the
            # default is a dry run — visible, never fatal — unless the
            # caller opts into --strict-bench.
            regress_cmd = [sys.executable, "-m", "repro", "obs", "regress"]
            if not args.strict_bench:
                regress_cmd.append("--dry-run")
            failures += _run(regress_cmd, root,
                             "bench-history regression check") != 0
        else:
            print(f"== micro-bench: skipped (no {bench_dir})")

    if failures:
        print(f"repro-check: {failures} step(s) failed")
        return 1
    print("repro-check: all steps passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
