"""Fig. 2: which classes absorb a class's misclassifications.

The paper's Fig. 2 shows that CIFAR-10 misclassifications land on visually
similar classes (cat <-> dog, deer <-> horse, ...), which motivates the
feature-discrimination loss.  On our synthetic analogue the "visual
similarity" is explicit — classes sharing an anchor group — so the
reproduced claim is: **the top misclassification targets of a class are
predominantly its same-group (confusable) classes.**
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.training import predict_logits, train_model
from ..data.registry import load_dataset
from ..nn.convnet import ConvNet
from ..utils.metrics import confusion_matrix
from ..utils.rng import spawn_rngs
from .profiles import get_profile
from .reporting import format_table

__all__ = ["Fig2ClassReport", "Fig2Result", "run_fig2", "format_fig2"]


@dataclass
class Fig2ClassReport:
    """Top misclassification targets for one class."""

    source_class: int
    top_classes: tuple[int, ...]       # most frequent wrong predictions
    proportions: tuple[float, ...]     # share of that class's errors
    same_group: tuple[bool, ...]       # whether each target is confusable


@dataclass
class Fig2Result:
    """Per-class misclassification structure."""

    dataset: str
    reports: list[Fig2ClassReport] = field(default_factory=list)
    matrix: np.ndarray | None = None
    test_accuracy: float = 0.0

    @property
    def same_group_hit_rate(self) -> float:
        """Fraction of top-confusion slots occupied by same-group classes.

        The quantitative version of Fig. 2's message; random confusion
        would land near the base rate of same-group classes.
        """
        hits = [flag for report in self.reports for flag in report.same_group]
        return float(np.mean(hits)) if hits else 0.0


def run_fig2(*, dataset: str = "cifar10", profile: str = "smoke",
             seed: int = 0, top_k: int = 3,
             train_fraction: float = 0.5,
             classes: Sequence[int] | None = None) -> Fig2Result:
    """Train a model and analyze its misclassification structure."""
    prof = get_profile(profile)
    data = load_dataset(dataset, prof.dataset_profile, seed=0)
    data_rng, model_rng, train_rng = spawn_rngs(seed, 3)

    model = ConvNet(data.channels, data.num_classes, data.image_size,
                    width=prof.model_width, depth=prof.model_depth,
                    rng=model_rng)
    x, y = data.pretrain_subset(train_fraction, rng=data_rng)
    train_model(model, x, y, epochs=prof.pretrain_epochs * 2, lr=1e-2,
                rng=train_rng)

    predictions = predict_logits(model, data.x_test).argmax(axis=1)
    matrix = confusion_matrix(data.y_test, predictions, data.num_classes)
    accuracy = float(np.trace(matrix) / matrix.sum())

    result = Fig2Result(dataset=dataset, matrix=matrix, test_accuracy=accuracy)
    for cls in (classes if classes is not None else range(data.num_classes)):
        errors = matrix[cls].astype(np.float64).copy()
        errors[cls] = 0.0
        total = errors.sum()
        if total == 0:
            continue
        order = np.argsort(errors)[::-1][:top_k]
        order = [int(c) for c in order if errors[c] > 0]
        confusable = set(int(c) for c in data.confusable_classes(cls))
        result.reports.append(Fig2ClassReport(
            source_class=int(cls),
            top_classes=tuple(order),
            proportions=tuple(float(errors[c] / total) for c in order),
            same_group=tuple(c in confusable for c in order),
        ))
    return result


def format_fig2(result: Fig2Result) -> str:
    """Render per-class top-confusion rows (the bars of Fig. 2)."""
    headers = ["Class", "Top misclassified as (share of errors)", "Same group?"]
    rows = []
    for report in result.reports:
        targets = ", ".join(f"{c}:{p:.0%}" for c, p in
                            zip(report.top_classes, report.proportions))
        flags = ", ".join("yes" if f else "no" for f in report.same_group)
        rows.append([str(report.source_class), targets, flags])
    table = format_table(headers, rows,
                         title=f"Fig. 2: misclassification structure on "
                               f"{result.dataset} (test acc "
                               f"{result.test_accuracy:.2%})")
    return (table + f"\nsame-group hit rate of top confusions: "
                    f"{result.same_group_hit_rate:.2%}")
