"""Ablations of DECO's design choices (beyond the paper's figures).

§III motivates three design decisions that Table I/II only test jointly;
these runners isolate them:

* **one-step vs. multi-step** — fresh randomized model per matching
  iteration (paper) vs. a single model reused across iterations ("using
  multiple randomized models for a single step ... yields significantly
  better results than using one model across multiple steps").
* **confidence weighting** — Eq. (4)'s ``w_i`` on real samples vs. uniform
  weights.
* **feature discrimination** — alpha=0.1 vs. alpha=0 (also the endpoints of
  Fig. 4b, here on the streaming dataset of Table I).
* **finite-difference epsilon** — sensitivity to the Eq. (7) step size
  around the prescribed 0.01/||.||.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .common import prepare_experiment
from .grid import begin_progress, prepared_cache_dir, run_method_grid
from .reporting import format_table

__all__ = ["AblationResult", "run_ablations", "format_ablations",
           "DEFAULT_VARIANTS"]

# name -> kwargs for the OneStepMatcher
DEFAULT_VARIANTS: dict[str, dict] = {
    "deco (full)": {},
    "single model, multi-step": {"rerandomize": False},
    "no confidence weighting": {"use_confidence": False},
    "no feature discrimination": {"alpha": 0.0},
    "epsilon x10": {"epsilon_numerator": 0.1},
    "epsilon /10": {"epsilon_numerator": 0.001},
    "l2 distance": {"metric": "l2"},
}


@dataclass
class AblationResult:
    """Final accuracy per ablation variant."""

    dataset: str
    ipc: int
    accuracy: dict[str, float] = field(default_factory=dict)

    @property
    def full_accuracy(self) -> float:
        return self.accuracy["deco (full)"]

    def delta(self, variant: str) -> float:
        """Accuracy change of a variant relative to full DECO."""
        return self.accuracy[variant] - self.full_accuracy


def run_ablations(*, dataset: str = "core50", ipc: int = 10,
                  variants: dict[str, dict] | None = None,
                  profile: str = "smoke",
                  seeds: Sequence[int] = (0,),
                  jobs: int = 1, checkpoint_dir=None,
                  resume: bool = False, progress=None) -> AblationResult:
    """Run DECO variants differing in exactly one design choice."""
    variants = variants if variants is not None else DEFAULT_VARIANTS
    prepared = prepare_experiment(dataset, profile, seed=0,
                                  cache_dir=prepared_cache_dir(checkpoint_dir))
    result = AblationResult(dataset=dataset, ipc=ipc)
    grid = [(name, dict(kwargs), s)
            for name, kwargs in variants.items() for s in seeds]
    configs = [{"method": "deco", "ipc": ipc, "seed": s,
                "condenser_kwargs": kwargs} for _, kwargs, s in grid]
    begin_progress(progress, len(configs), label=f"ablations/{dataset}",
                   jobs=jobs)
    runs = run_method_grid(
        prepared, configs,
        jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        progress=progress)
    for name in variants:
        accs = [run.final_accuracy
                for (gname, _, _), run in zip(grid, runs) if gname == name]
        result.accuracy[name] = sum(accs) / len(accs)
    return result


def format_ablations(result: AblationResult) -> str:
    headers = ["Variant", "Accuracy", "Delta vs full"]
    rows = []
    for name, acc in result.accuracy.items():
        delta = "" if name == "deco (full)" else f"{result.delta(name):+.2%}"
        rows.append([name, f"{acc:.2%}", delta])
    return format_table(headers, rows,
                        title=f"Ablations on {result.dataset} "
                              f"(IpC={result.ipc})")
