"""Label-noise robustness: what feature discrimination is *for*.

§III-D argues that incorrect pseudo-labels contaminate the per-class
synthetic images and that the feature-discrimination loss (Eq. 8) restores
class purity.  The paper tests this indirectly (Fig. 4b's alpha sweep);
this experiment tests it directly by injecting *controlled* label noise
into the pseudo-labels — flipping a fraction of retained labels to a
random confusable (same anchor group) class, exactly the error mode Fig. 2
documents — and comparing DECO with and without the discrimination loss
as the noise rate grows.

Expected shape: the accuracy penalty of removing the discrimination loss
grows with the injected noise rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.pseudo_label import MajorityVotePseudoLabeler, PseudoLabelResult
from .common import prepare_experiment, run_method
from .reporting import format_table

__all__ = ["NoisyPseudoLabeler", "NoiseRobustnessResult",
           "run_noise_robustness", "format_noise_robustness"]


class NoisyPseudoLabeler(MajorityVotePseudoLabeler):
    """Majority-vote labeler that corrupts a fraction of retained labels.

    Flips each retained label with probability ``noise_rate`` to a random
    *confusable* class (same anchor group, falling back to any other
    class), emulating the structured mistakes of Fig. 2 at a controlled
    rate.
    """

    def __init__(self, threshold: float = 0.4, *, noise_rate: float,
                 group_of: np.ndarray,
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__(threshold)
        if not 0.0 <= noise_rate <= 1.0:
            raise ValueError("noise_rate must be in [0, 1]")
        self.noise_rate = float(noise_rate)
        self.group_of = np.asarray(group_of)
        self._rng = np.random.default_rng(rng if isinstance(rng, int) or rng is None
                                          else rng.integers(2 ** 63))

    def _confusable_flip(self, label: int) -> int:
        same = np.flatnonzero(self.group_of == self.group_of[label])
        candidates = same[same != label]
        if candidates.size == 0:
            candidates = np.flatnonzero(np.arange(len(self.group_of)) != label)
        return int(self._rng.choice(candidates))

    def label_segment(self, model, images) -> PseudoLabelResult:
        result = super().label_segment(model, images)
        if self.noise_rate == 0.0 or not result.keep.any():
            return result
        labels = result.labels.copy()
        flip = result.keep & (self._rng.random(len(labels)) < self.noise_rate)
        for i in np.flatnonzero(flip):
            labels[i] = self._confusable_flip(int(labels[i]))
        # Flipped labels stay "active enough" to be condensed: this models
        # noise that slipped *past* the voting filter.
        keep = result.keep & np.isin(labels, result.active_classes)
        return PseudoLabelResult(labels=labels,
                                 confidences=result.confidences,
                                 active_classes=result.active_classes,
                                 keep=keep)


@dataclass
class NoiseRobustnessResult:
    """Accuracy per (noise_rate, alpha)."""

    dataset: str
    ipc: int
    noise_rates: tuple[float, ...] = ()
    alphas: tuple[float, ...] = ()
    accuracy: dict[tuple[float, float], float] = field(default_factory=dict)

    def discrimination_gain(self, noise_rate: float) -> float:
        """Accuracy of alpha=max over alpha=0 at a noise rate."""
        best_alpha = max(self.alphas)
        return (self.accuracy[(noise_rate, best_alpha)]
                - self.accuracy[(noise_rate, 0.0)])


def run_noise_robustness(*, dataset: str = "core50", ipc: int = 10,
                         noise_rates: Sequence[float] = (0.0, 0.2, 0.4),
                         alphas: Sequence[float] = (0.0, 0.1),
                         profile: str = "smoke",
                         seed: int = 0) -> NoiseRobustnessResult:
    """Sweep injected pseudo-label noise against the discrimination weight."""
    prepared = prepare_experiment(dataset, profile, seed=0)
    result = NoiseRobustnessResult(dataset=dataset, ipc=ipc,
                                   noise_rates=tuple(noise_rates),
                                   alphas=tuple(alphas))
    group_of = prepared.dataset.group_of
    for noise in noise_rates:
        for alpha in alphas:
            labeler = NoisyPseudoLabeler(0.4, noise_rate=noise,
                                         group_of=group_of, rng=seed)
            run = run_method(prepared, "deco", ipc, seed=seed,
                             condenser_kwargs={"alpha": float(alpha)},
                             labeler=labeler)
            result.accuracy[(float(noise), float(alpha))] = run.final_accuracy
    return result


def format_noise_robustness(result: NoiseRobustnessResult) -> str:
    headers = ["noise rate"] + [f"alpha={a:g}" for a in result.alphas] \
        + ["discrimination gain"]
    rows = []
    for noise in result.noise_rates:
        row = [f"{noise:.0%}"]
        for alpha in result.alphas:
            row.append(f"{result.accuracy[(noise, alpha)]:.2%}")
        row.append(f"{result.discrimination_gain(noise):+.2%}")
        rows.append(row)
    return format_table(headers, rows,
                        title=f"Pseudo-label noise robustness on "
                              f"{result.dataset} (IpC={result.ipc})")
