"""Fan experiment grid points out through the Layer-2 sweep executor.

Every table/figure runner reduces to "run :func:`~repro.experiments.common.
run_method` once per grid point on a shared :class:`~repro.experiments.
common.PreparedExperiment`".  :func:`run_method_grid` is that loop with an
optional ``jobs=N`` escape hatch: with ``jobs=1`` (the default) it *is* the
serial loop, byte for byte; with ``jobs>1`` it ships the prepared
experiment's arrays (dataset splits, pretrain subset, pre-trained model
weights) to worker processes once via :class:`repro.parallel.SharedArrayPack`
and runs the grid points concurrently, returning results in grid order.

Workers rebuild an identical ``PreparedExperiment`` from the shared block —
identical array bytes, identical model parameters — so a grid point
produces bit-identical results whichever process runs it; only wall-clock
changes with ``jobs``.
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np

from ..parallel import SweepOutcome, run_sweep
from ..persist import ResumeJournal, content_hash, method_result_store
from .common import (MethodResult, PreparedExperiment, prepare_experiment,
                     run_method)

__all__ = ["run_method_grid", "pack_prepared", "rebuild_prepared",
           "grid_journal", "prepared_cache_dir", "begin_progress"]


def begin_progress(progress, total: int, *, label: str = "",
                   jobs: int = 1) -> None:
    """Arm a progress reporter for an upcoming grid, if it supports it.

    Drivers call this once per grid so the reporter can label the block
    and reset its ETA statistics; plain callables without a ``begin``
    method (bare ``on_result`` hooks) are fine and simply skip it.
    """
    begin = getattr(progress, "begin", None)
    if begin is not None:
        begin(total, label=label, jobs=jobs)


def prepared_cache_dir(checkpoint_dir: str | os.PathLike | None
                       ) -> pathlib.Path | None:
    """Where a checkpoint dir keeps its prepared-experiment cache."""
    if checkpoint_dir is None:
        return None
    return pathlib.Path(checkpoint_dir) / "prepared"


def pack_prepared(prepared: PreparedExperiment):
    """Split a prepared experiment into (big arrays, small picklable context).

    The arrays dict feeds :class:`~repro.parallel.SharedArrayPack`; the
    context dict travels through the pool initializer.  Model parameters go
    through the arrays dict too (prefixed ``param.``) so nothing heavier
    than metadata is ever pickled per task.
    """
    ds = prepared.dataset
    arrays = {
        "x_train": ds.x_train,
        "y_train": ds.y_train,
        "train_sessions": ds.train_sessions,
        "x_test": ds.x_test,
        "y_test": ds.y_test,
        "group_of": ds.group_of,
        "pretrain_x": prepared.pretrain_x,
        "pretrain_y": prepared.pretrain_y,
    }
    has_prototypes = ds.prototypes is not None
    if has_prototypes:
        arrays["prototypes"] = ds.prototypes
    state = prepared.model.state_dict()
    for name, value in state.items():
        arrays["param." + name] = value
    context = {
        "dataset_name": prepared.dataset_name,
        "profile_name": prepared.profile.name,
        "spec": ds.spec,
        "pretrain_accuracy": prepared.pretrain_accuracy,
        "param_names": list(state),
        "has_prototypes": has_prototypes,
        # Byte-level identity of this prepared state: keys the per-worker
        # rebuild cache and scopes resume-journal entries, so two
        # experiments that merely share (dataset, profile) never alias.
        "content_hash": content_hash(arrays),
    }
    return arrays, context


def rebuild_prepared(context: dict, arrays) -> PreparedExperiment:
    """Reconstruct the prepared experiment inside a worker process.

    The dataset wraps the shared read-only views directly (every consumer
    copies out of them); model parameters are copied because training
    mutates them.
    """
    from ..data.datasets import SyntheticImageDataset
    from ..nn.convnet import ConvNet
    from .profiles import get_profile

    profile = get_profile(context["profile_name"])
    ds = SyntheticImageDataset(
        spec=context["spec"],
        x_train=arrays["x_train"],
        y_train=arrays["y_train"],
        train_sessions=arrays["train_sessions"],
        x_test=arrays["x_test"],
        y_test=arrays["y_test"],
        group_of=arrays["group_of"],
        prototypes=arrays["prototypes"] if context["has_prototypes"] else None)
    model = ConvNet(ds.channels, ds.num_classes, ds.image_size,
                    width=profile.model_width, depth=profile.model_depth,
                    rng=np.random.default_rng(0))
    model.load_state_dict({name: np.asarray(arrays["param." + name])
                           for name in context["param_names"]})
    return PreparedExperiment(
        dataset_name=context["dataset_name"], profile=profile, dataset=ds,
        model=model, pretrain_x=arrays["pretrain_x"],
        pretrain_y=arrays["pretrain_y"],
        pretrain_accuracy=context["pretrain_accuracy"])


# One rebuild per worker process per prepared experiment, reused across the
# grid points that land on that worker.  Keyed by the *content hash* of the
# packed arrays, not by (dataset, profile): a second grid in the same
# process — or a fork-inherited cache — with the same names but different
# pretrained weights/splits must rebuild, or every grid point would
# silently run against the stale experiment.  Bounded so back-to-back
# grids over different experiments don't accumulate tens of MB each.
_WORKER_CACHE: dict[str, PreparedExperiment] = {}
_WORKER_CACHE_MAX = 2


def _grid_worker(config: dict, context: dict, arrays) -> MethodResult:
    key = context["content_hash"]
    prepared = _WORKER_CACHE.get(key)
    if prepared is None:
        prepared = rebuild_prepared(context, arrays)
        while len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[key] = prepared
    return run_method(prepared, **config)


def _local_grid_worker(prepared: PreparedExperiment):
    """Inline (jobs=1) sweep worker bound to the in-process experiment."""
    def worker(config: dict, context, arrays) -> MethodResult:
        return run_method(prepared, **config)
    return worker


def _journal_for_context(checkpoint_dir: str | os.PathLike,
                         context: dict) -> ResumeJournal:
    checkpoint_dir = pathlib.Path(checkpoint_dir)
    scope = {"dataset": context["dataset_name"],
             "profile": context["profile_name"],
             "prepared": context["content_hash"]}
    save_result, load_result = method_result_store(checkpoint_dir / "results")
    return ResumeJournal(checkpoint_dir / "journal.jsonl", scope=scope,
                         save_result=save_result, load_result=load_result)


def grid_journal(checkpoint_dir: str | os.PathLike,
                 prepared: PreparedExperiment) -> ResumeJournal:
    """The resume journal of ``checkpoint_dir``, scoped to ``prepared``.

    Layout: ``journal.jsonl`` at the top of the directory, one persisted
    :class:`MethodResult` checkpoint per completed point under
    ``results/``.  The scope ties every entry to the byte-exact prepared
    state (dataset, profile, content hash of the packed arrays), so a
    journal recorded against different pretrained weights never satisfies
    a resume.
    """
    _, context = pack_prepared(prepared)
    return _journal_for_context(checkpoint_dir, context)


def run_method_grid(prepared: PreparedExperiment, configs, *,
                    jobs: int = 1,
                    checkpoint_dir: str | os.PathLike | None = None,
                    resume: bool = False,
                    progress=None) -> list[MethodResult]:
    """Run ``run_method(prepared, **config)`` per config, in config order.

    ``jobs=1`` executes the exact serial loop in-process.  ``jobs>1`` fans
    the grid out to worker processes; a failing grid point raises
    :class:`~repro.parallel.SweepTaskError` carrying its config and the
    worker traceback.

    With ``checkpoint_dir`` set, every completed grid point is persisted
    and journaled there (see :func:`grid_journal`); ``resume=True``
    additionally skips configs the journal already records, loading their
    results from disk — results are deterministic in (prepared, config),
    so a resumed grid is bit-identical to an uninterrupted one.

    ``progress`` is an optional ``progress(index, outcome)`` callable (a
    :class:`repro.obs.SweepProgress`, typically) invoked per completed
    grid point in completion order — every execution path, including the
    bare serial loop, reports through it.
    """
    configs = [dict(c) for c in configs]
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_dir is None:
        if jobs <= 1 or len(configs) <= 1:
            if progress is None:
                return [run_method(prepared, **c) for c in configs]
            results = []
            for i, config in enumerate(configs):
                t0 = time.perf_counter()
                result = run_method(prepared, **config)
                results.append(result)
                progress(i, SweepOutcome(config=dict(config), result=result,
                                         worker_pid=os.getpid(),
                                         seconds=time.perf_counter() - t0))
            return results
        arrays, context = pack_prepared(prepared)
        outcomes = run_sweep(_grid_worker, configs, jobs=jobs, arrays=arrays,
                             context=context, on_result=progress)
        return [o.result for o in outcomes]

    arrays, context = pack_prepared(prepared)
    journal = _journal_for_context(checkpoint_dir, context)
    if jobs <= 1 or len(configs) <= 1:
        outcomes = run_sweep(_local_grid_worker(prepared), configs, jobs=1,
                             journal=journal, resume=resume,
                             on_result=progress)
    else:
        outcomes = run_sweep(_grid_worker, configs, jobs=jobs, arrays=arrays,
                             context=context, journal=journal, resume=resume,
                             on_result=progress)
    return [o.result for o in outcomes]
