"""Shared experiment machinery: prepare → run-method → measure.

Every table/figure runner builds on the same three steps:

1. :func:`prepare_experiment` — generate the dataset, build the ConvNet,
   pre-train it offline on the labeled fraction (§IV-A1).
2. :func:`run_method` — run one on-device method (DECO, a selection
   baseline, a condensation baseline, or the upper bound) over a freshly
   ordered stream, starting from a copy of the pre-trained model.
3. Aggregate across seeds.

The dataset is generated once per (dataset, profile); seeds vary the model
initialization, the stream order, and every stochastic algorithm choice —
matching how the paper runs "five trials with different random seeds".
"""

from __future__ import annotations

import copy
import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..buffer.buffer import RawBuffer, SyntheticBuffer
from ..buffer.factorized import FactorizedSyntheticBuffer
from ..buffer.selection import (EXTRA_STRATEGY_NAMES, STRATEGY_NAMES,
                                make_strategy)
from ..condensation import CONDENSER_NAMES, CondensationMethod, make_condenser
from ..core.deco import DECOLearner, condense_offline
from ..core.learner import LearnerConfig, LearnerHistory
from ..core.pseudo_label import MajorityVotePseudoLabeler
from ..core.replay import ReplayLearner, UpperBoundLearner
from ..core.training import train_model
from ..data.datasets import SyntheticImageDataset
from ..data.registry import load_dataset
from ..data.stream import make_stream
from ..nn.convnet import ConvNet
from ..utils.rng import spawn_rngs, to_rng
from .profiles import (ExperimentProfile, get_profile, learning_rate,
                       pretrain_fraction, stream_settings)

__all__ = ["PreparedExperiment", "prepare_experiment", "run_method",
           "MethodResult", "METHOD_NAMES", "TimedCondenser"]

METHOD_NAMES = ("deco",) + STRATEGY_NAMES + EXTRA_STRATEGY_NAMES \
    + ("upper_bound",)

_PREPARED_CACHE: dict[tuple[str, str, int], "PreparedExperiment"] = {}


@dataclass
class PreparedExperiment:
    """A dataset plus a model pre-trained on its labeled fraction."""

    dataset_name: str
    profile: ExperimentProfile
    dataset: SyntheticImageDataset
    model: ConvNet
    pretrain_x: np.ndarray
    pretrain_y: np.ndarray
    pretrain_accuracy: float

    def fresh_model(self) -> ConvNet:
        """An independent copy of the pre-trained deployed model."""
        return copy.deepcopy(self.model)

    def learner_config(self) -> LearnerConfig:
        return LearnerConfig(
            beta=10,
            train_epochs=self.profile.train_epochs,
            lr=learning_rate(self.dataset_name),
            # Cost knob for the CPU substrate: bound each model update to
            # roughly "train_epochs epochs on a 1k-sample buffer", applied
            # identically to every method so comparisons stay fair.
            max_update_steps=self.profile.train_epochs * 8,
            memory_budget_bytes=self.profile.memory_budget_mb * 2 ** 20,
        )


def prepare_experiment(dataset_name: str, profile_name: str = "smoke", *,
                       seed: int = 0,
                       use_cache: bool = True,
                       cache_dir: str | os.PathLike | None = None
                       ) -> PreparedExperiment:
    """Generate data and pre-train the model to deploy.

    Deterministic in (dataset_name, profile_name, seed); cached in-process
    because all methods of one comparison share the same starting point.

    ``cache_dir`` additionally persists the prepared experiment to disk
    (one checkpoint per key, see :mod:`repro.persist.prepared_cache`):
    repeated sweeps — including freshly started processes — load the
    pretrained weights and splits instead of re-pretraining.  A cache
    entry that fails identity or content-hash validation is ignored and
    rebuilt, never trusted.
    """
    key = (dataset_name, profile_name, int(seed))
    if use_cache and key in _PREPARED_CACHE:
        prepared = _PREPARED_CACHE[key]
        if cache_dir is not None:
            # Write through: an in-process hit must still leave a disk
            # entry so later processes (workers, resumed runs) find it.
            from ..persist import prepared_cache_path, save_prepared
            base = prepared_cache_path(cache_dir, dataset_name, profile_name,
                                       seed)
            if not base.with_suffix(".json").is_file():
                save_prepared(cache_dir, prepared, seed=seed)
        return prepared
    if cache_dir is not None:
        from ..persist import load_prepared
        prepared = load_prepared(cache_dir, dataset_name, profile_name, seed)
        if prepared is not None:
            if use_cache:
                _PREPARED_CACHE[key] = prepared
            return prepared

    profile = get_profile(profile_name)
    dataset = load_dataset(dataset_name, profile.dataset_profile, seed=0)
    data_rng, model_rng, train_rng = spawn_rngs(seed, 3)

    model = ConvNet(dataset.channels, dataset.num_classes, dataset.image_size,
                    width=profile.model_width, depth=profile.model_depth,
                    rng=model_rng)
    fraction = pretrain_fraction(dataset_name, profile_name)
    pre_x, pre_y = dataset.pretrain_subset(fraction, rng=data_rng)
    train_model(model, pre_x, pre_y, epochs=profile.pretrain_epochs,
                lr=learning_rate(dataset_name), rng=train_rng)

    from ..core.training import evaluate_accuracy
    prepared = PreparedExperiment(
        dataset_name=dataset_name, profile=profile, dataset=dataset,
        model=model, pretrain_x=pre_x, pretrain_y=pre_y,
        pretrain_accuracy=evaluate_accuracy(model, dataset.x_test, dataset.y_test))
    if use_cache:
        _PREPARED_CACHE[key] = prepared
    if cache_dir is not None:
        from ..persist import save_prepared
        save_prepared(cache_dir, prepared, seed=seed)
    return prepared


class TimedCondenser(CondensationMethod):
    """Delegating wrapper that accumulates condensation wall time and passes.

    Table II reports the total execution time of the condensation method
    itself; this wrapper isolates that from pseudo-labeling and model
    retraining.
    """

    def __init__(self, inner: CondensationMethod) -> None:
        self.inner = inner
        self.name = inner.name
        self.total_seconds = 0.0
        self.total_passes = 0
        self.total_iterations = 0

    def condense(self, *args, **kwargs):
        start = time.perf_counter()
        stats = self.inner.condense(*args, **kwargs)
        self.total_seconds += time.perf_counter() - start
        self.total_passes += stats.forward_backward_passes
        self.total_iterations += stats.iterations
        return stats


@dataclass
class MethodResult:
    """Outcome of one method run on one stream."""

    method: str
    ipc: int
    seed: int
    final_accuracy: float
    history: LearnerHistory
    wall_seconds: float
    condense_seconds: float = 0.0
    condense_passes: int = 0
    extra: dict = field(default_factory=dict)


def _fill_raw_buffer_from_pretrain(buffer: RawBuffer, x: np.ndarray,
                                   y: np.ndarray,
                                   rng: np.random.Generator) -> None:
    """Seed a baseline buffer with a class-balanced slice of pretrain data."""
    order: list[int] = []
    for c in np.unique(y):
        order.extend(np.flatnonzero(y == c))
    order = list(rng.permutation(order))
    for i in order[: buffer.capacity]:
        buffer.add(x[i], int(y[i]))


def run_method(prepared: PreparedExperiment, method: str, ipc: int, *,
               seed: int = 0,
               condenser_name: str = "deco",
               condenser_kwargs: dict | None = None,
               labeler_threshold: float = 0.4,
               labeler: MajorityVotePseudoLabeler | None = None,
               eval_every: int | None = None,
               config: LearnerConfig | None = None,
               checkpoint_every: int | None = None,
               checkpoint_dir: str | os.PathLike | None = None,
               resume: bool = False,
               decode_factor: int | None = None) -> MethodResult:
    """Run one on-device method over a freshly ordered stream.

    Parameters
    ----------
    prepared:
        Output of :func:`prepare_experiment`.
    method:
        ``"deco"``, one of the selection baselines
        (:data:`~repro.buffer.selection.STRATEGY_NAMES`), or
        ``"upper_bound"``.
    ipc:
        Images per class; buffer capacity is ``ipc * num_classes``.
    condenser_name / condenser_kwargs:
        For ``method="deco"``: which condensation algorithm fills the buffer
        (swapping in ``"dc"``/``"dsa"``/``"dm"`` reproduces Table II).
    labeler_threshold:
        Majority-voting threshold ``m`` (Fig. 4a sweeps this).
    labeler:
        Full pseudo-labeler override (e.g. a
        :class:`~repro.experiments.noise.NoisyPseudoLabeler`); when given,
        ``labeler_threshold`` is ignored.
    eval_every:
        Segment interval for learning-curve evaluations (Fig. 3).
    checkpoint_every / checkpoint_dir / resume:
        Mid-stream learner checkpointing, passed straight to
        :meth:`~repro.core.learner.OnDeviceLearner.run`: snapshot the
        learner every ``checkpoint_every`` segments into
        ``checkpoint_dir`` and, with ``resume=True``, continue from the
        newest checkpoint found there (bit-identical for learners whose
        ``checkpoint()`` captures their full state, e.g. DECO).  Note the
        ``condense_seconds``/``wall_seconds`` of a resumed run only cover
        the portion executed after the restore.
    decode_factor:
        Factorized condensed storage (DREAM-style): store the synthetic
        buffer at ``1/f`` linear resolution and decode by bilinear
        upsample (``method="deco"`` with the native ``"deco"`` condenser
        only — the DC/DSA/DM baselines write raw pixels and cannot decode).
        ``None`` takes the factor from ``config`` (default 1).
    """
    if method not in METHOD_NAMES:
        raise KeyError(f"unknown method {method!r}; available: {METHOD_NAMES}")
    if condenser_name not in CONDENSER_NAMES:
        raise KeyError(f"unknown condenser {condenser_name!r}")
    if ipc < 1:
        raise ValueError("ipc must be >= 1")

    # Per-run peak: the ledger's high-water gauge is process-wide, so a
    # serial sweep would otherwise report an earlier, larger configuration's
    # peak for every later point.
    obs.default_ledger.reset_high_water()

    profile = prepared.profile
    dataset = prepared.dataset
    stream_rng, learner_rng, init_rng = spawn_rngs(seed + 1, 3)
    stream = make_stream(dataset, segment_size=profile.segment_size,
                         rng=stream_rng,
                         **stream_settings(prepared.dataset_name, profile.name))
    model = prepared.fresh_model()
    config = config or prepared.learner_config()
    if decode_factor is not None and decode_factor != config.decode_factor:
        config = dataclasses.replace(config, decode_factor=int(decode_factor))
    factor = config.decode_factor
    if factor != 1 and (method != "deco" or condenser_name != "deco"):
        raise ValueError(
            "decode_factor > 1 requires method='deco' with the native "
            "'deco' condenser; the DC/DSA/DM baselines and raw-replay "
            "buffers operate on full-resolution pixels")

    timed: TimedCondenser | None = None
    start = time.perf_counter()
    if method == "deco":
        kwargs = dict(condenser_kwargs or {})
        if condenser_name == "deco":
            kwargs.setdefault("iterations", profile.condense_iterations)
        timed = TimedCondenser(make_condenser(condenser_name, **kwargs))
        if factor != 1:
            buffer = FactorizedSyntheticBuffer(
                dataset.num_classes, ipc, dataset.image_shape(), factor=factor)
        else:
            buffer = SyntheticBuffer(dataset.num_classes, ipc,
                                     dataset.image_shape())
        learner = DECOLearner(
            model, buffer, condenser=timed,
            labeler=labeler or MajorityVotePseudoLabeler(labeler_threshold),
            config=config, rng=learner_rng)
        condense_offline(buffer, prepared.pretrain_x, prepared.pretrain_y,
                         condenser=timed, model_factory=learner.model_factory,
                         rounds=profile.offline_condense_rounds, rng=init_rng)
    elif method == "upper_bound":
        learner = UpperBoundLearner(model, config=config, rng=learner_rng)
    else:
        buffer = RawBuffer(ipc * dataset.num_classes, dataset.image_shape())
        _fill_raw_buffer_from_pretrain(buffer, prepared.pretrain_x,
                                       prepared.pretrain_y, init_rng)
        learner = ReplayLearner(model, buffer, make_strategy(method),
                                config=config, rng=learner_rng)

    history = learner.run(stream, x_test=dataset.x_test, y_test=dataset.y_test,
                          eval_every=eval_every,
                          checkpoint_every=checkpoint_every,
                          checkpoint_dir=checkpoint_dir, resume=resume)
    wall = time.perf_counter() - start

    # Memory accounting works with telemetry disabled: the footprint is one
    # post-run probe of the learner's persistent state, judged against the
    # profile's declared on-device budget.
    foot = learner.memory_footprint()
    budget = config.memory_budget_bytes
    memory = dict(foot, budget_bytes=budget,
                  budget_ok=budget is None or foot["total_bytes"] <= budget)

    return MethodResult(
        method=method if method != "deco" else f"deco[{condenser_name}]",
        ipc=ipc, seed=seed, final_accuracy=history.final_accuracy,
        history=history, wall_seconds=wall,
        condense_seconds=timed.total_seconds if timed else 0.0,
        condense_passes=timed.total_passes if timed else 0,
        extra={"memory": memory},
    )


def run_seeds(prepared: PreparedExperiment, method: str, ipc: int,
              seeds: Sequence[int], **kwargs) -> list[MethodResult]:
    """Run the same configuration across several seeds."""
    return [run_method(prepared, method, ipc, seed=s, **kwargs) for s in seeds]
