"""Fig. 3: learning curves (accuracy vs. processed inputs).

Runs DECO against the two most competitive baselines (FIFO and
Selective-BP) at IpC=10 on CORe50-like and ImageNet-10-like streams,
evaluating every few segments.  The reproduced shapes: DECO's curve
dominates throughout, reaches the baselines' final accuracy with a fraction
of the data, and is smoother (lower step-to-step variation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .common import prepare_experiment, run_method
from .reporting import format_series

__all__ = ["LearningCurve", "Fig3Result", "run_fig3", "format_fig3",
           "curve_smoothness", "data_to_reach"]

DEFAULT_METHODS = ("fifo", "selective_bp", "deco")


@dataclass
class LearningCurve:
    """One method's accuracy trace over the stream."""

    method: str
    samples_seen: list[int]
    accuracy: list[float]

    @property
    def final_accuracy(self) -> float:
        return self.accuracy[-1]


def curve_smoothness(curve: LearningCurve) -> float:
    """Mean absolute step-to-step accuracy change (lower = smoother)."""
    acc = np.asarray(curve.accuracy)
    if acc.size < 2:
        return 0.0
    return float(np.abs(np.diff(acc)).mean())


def data_to_reach(curve: LearningCurve, target: float) -> int | None:
    """Processed inputs needed to first reach ``target`` accuracy."""
    for samples, acc in zip(curve.samples_seen, curve.accuracy):
        if acc >= target:
            return samples
    return None


@dataclass
class Fig3Result:
    """Curves per (dataset, method)."""

    curves: dict[tuple[str, str], LearningCurve] = field(default_factory=dict)
    datasets: tuple[str, ...] = ()
    methods: tuple[str, ...] = ()
    ipc: int = 10

    def curve(self, dataset: str, method: str) -> LearningCurve:
        return self.curves[(dataset, method)]


def run_fig3(*, datasets: Sequence[str] = ("core50", "imagenet10"),
             methods: Sequence[str] = DEFAULT_METHODS, ipc: int = 10,
             profile: str = "smoke", seed: int = 0,
             eval_every: int = 5) -> Fig3Result:
    """Regenerate the Fig. 3 learning curves."""
    result = Fig3Result(datasets=tuple(datasets), methods=tuple(methods),
                        ipc=ipc)
    for dataset in datasets:
        prepared = prepare_experiment(dataset, profile, seed=0)
        for method in methods:
            run = run_method(prepared, method, ipc, seed=seed,
                             eval_every=eval_every)
            result.curves[(dataset, method)] = LearningCurve(
                method=method,
                samples_seen=list(run.history.samples_seen),
                accuracy=list(run.history.accuracy))
    return result


def format_fig3(result: Fig3Result) -> str:
    """Render each curve as an (inputs -> accuracy) series."""
    blocks = []
    for dataset in result.datasets:
        for method in result.methods:
            curve = result.curve(dataset, method)
            blocks.append(format_series(
                f"Fig. 3 {dataset} / {method} (IpC={result.ipc}, "
                f"smoothness={curve_smoothness(curve):.4f})",
                curve.samples_seen, curve.accuracy,
                x_label="inputs", y_label="accuracy"))
    return "\n\n".join(blocks)
