"""Table II: execution time and accuracy of the condensation methods.

Swaps DC / DSA / DM / DECO in as the condensation algorithm inside the same
on-device pipeline on the CORe50-like stream and reports, per IpC, the total
condensation execution time and the final accuracy.  The paper's headline:
DECO is ~10x faster than DC/DSA at comparable accuracy, and slightly slower
than DM but markedly more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .common import prepare_experiment
from .grid import begin_progress, prepared_cache_dir, run_method_grid
from .reporting import format_table

__all__ = ["Table2Entry", "Table2Result", "run_table2", "format_table2",
           "DEFAULT_CONDENSERS"]

DEFAULT_CONDENSERS = ("dc", "dsa", "dm", "deco")


@dataclass
class Table2Entry:
    """Time/accuracy of one condensation method at one IpC."""

    condenser: str
    ipc: int
    seconds: float
    accuracy: float
    passes: int


@dataclass
class Table2Result:
    """All Table II entries, keyed (condenser, ipc)."""

    entries: dict[tuple[str, int], Table2Entry] = field(default_factory=dict)
    condensers: tuple[str, ...] = ()
    ipcs: tuple[int, ...] = ()
    dataset: str = "core50"

    def entry(self, condenser: str, ipc: int) -> Table2Entry:
        return self.entries[(condenser, ipc)]

    def speedup(self, slow: str, fast: str, ipc: int) -> float:
        """Wall-clock ratio between two methods at an IpC."""
        return self.entry(slow, ipc).seconds / max(self.entry(fast, ipc).seconds,
                                                   1e-12)


def run_table2(*, dataset: str = "core50",
               ipcs: Sequence[int] = (1, 5, 10, 50),
               condensers: Sequence[str] = DEFAULT_CONDENSERS,
               profile: str = "smoke", seed: int = 0,
               jobs: int = 1, checkpoint_dir=None,
               resume: bool = False, progress=None) -> Table2Result:
    """Regenerate Table II (or a subset); ``jobs>1`` runs grid points in
    parallel worker processes.  ``checkpoint_dir``/``resume`` journal
    completed points and skip them on re-run (see :func:`run_method_grid`).
    """
    prepared = prepare_experiment(dataset, profile, seed=0,
                                  cache_dir=prepared_cache_dir(checkpoint_dir))
    result = Table2Result(condensers=tuple(condensers), ipcs=tuple(ipcs),
                          dataset=dataset)
    grid = [(condenser, ipc) for condenser in condensers for ipc in ipcs]
    configs = [{"method": "deco", "ipc": ipc, "seed": seed,
                "condenser_name": condenser} for condenser, ipc in grid]
    begin_progress(progress, len(configs), label=f"table2/{dataset}",
                   jobs=jobs)
    runs = run_method_grid(
        prepared, configs,
        jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        progress=progress)
    for (condenser, ipc), run in zip(grid, runs):
        result.entries[(condenser, ipc)] = Table2Entry(
            condenser=condenser, ipc=ipc,
            seconds=run.condense_seconds,
            accuracy=run.final_accuracy,
            passes=run.condense_passes)
    return result


def format_table2(result: Table2Result) -> str:
    """Render the result in the paper's Table II layout."""
    headers = ["Method"]
    for ipc in result.ipcs:
        headers += [f"IpC={ipc} Time(s)", f"IpC={ipc} Acc"]
    rows = []
    for condenser in result.condensers:
        row = [condenser.upper() if condenser != "deco" else "DECO"]
        for ipc in result.ipcs:
            entry = result.entry(condenser, ipc)
            row += [f"{entry.seconds:.1f}", f"{entry.accuracy * 100:.1f}"]
        rows.append(row)
    return format_table(headers, rows,
                        title=f"Table II: condensation time on {result.dataset}")
