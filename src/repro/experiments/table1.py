"""Table I: final average accuracy of DECO vs the selection baselines.

For each dataset and each IpC in {1, 5, 10, 50}, runs the five selection
baselines and DECO over the same streams (multiple seeds), plus the
unlimited-buffer upper bound, and reports mean±std accuracy and DECO's
relative improvement over the best baseline — the exact quantities of the
paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..buffer.selection import STRATEGY_NAMES
from ..utils.metrics import mean_and_std, relative_improvement
from .common import prepare_experiment
from .grid import begin_progress, prepared_cache_dir, run_method_grid
from .profiles import get_profile
from .reporting import format_mean_std, format_table

__all__ = ["Table1Cell", "Table1Result", "run_table1", "format_table1",
           "DEFAULT_DATASETS", "DEFAULT_IPCS"]

DEFAULT_DATASETS = ("icub1", "core50", "cifar100", "imagenet10")
DEFAULT_IPCS = (1, 5, 10, 50)


@dataclass
class Table1Cell:
    """Accuracy of one (dataset, ipc, method) configuration across seeds."""

    accuracies: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return mean_and_std(self.accuracies)[0]

    @property
    def std(self) -> float:
        return mean_and_std(self.accuracies)[1]


@dataclass
class Table1Result:
    """All cells of Table I, keyed (dataset, ipc, method).

    Factorized-storage columns are keyed by the pseudo-method name
    ``deco@f{f}``: the run stores the buffer at ``1/f`` linear resolution
    with ``f**2 x`` the row's IpC (equal byte budget), but the cell lives
    under the row's base IpC so it reads as a same-budget comparison.
    """

    cells: dict[tuple[str, int, str], Table1Cell] = field(default_factory=dict)
    upper_bounds: dict[str, float] = field(default_factory=dict)
    #: (dataset, ipc, method) -> persistent footprint in bytes (buffer +
    #: deployed model, from the run's memory accounting).
    memory_bytes: dict[tuple[str, int, str], int] = field(default_factory=dict)
    datasets: tuple[str, ...] = ()
    ipcs: tuple[int, ...] = ()
    baselines: tuple[str, ...] = ()
    decode_factors: tuple[int, ...] = (1,)

    def cell(self, dataset: str, ipc: int, method: str) -> Table1Cell:
        return self.cells[(dataset, ipc, method)]

    def accuracy_per_mib(self, dataset: str, ipc: int, method: str) -> float:
        """Mean accuracy (%) per MiB of persistent on-device state.

        The paper states memory as images-per-class; this is the same story
        in bytes — how much accuracy each method buys per MiB it holds.
        """
        nbytes = self.memory_bytes.get((dataset, ipc, method))
        if not nbytes:
            return float("nan")
        return self.cell(dataset, ipc, method).mean * 100.0 / (nbytes / 2 ** 20)

    def best_baseline(self, dataset: str, ipc: int) -> tuple[str, float]:
        """Name and mean accuracy of the strongest baseline for a config."""
        best_name, best_acc = "", -1.0
        for name in self.baselines:
            acc = self.cell(dataset, ipc, name).mean
            if acc > best_acc:
                best_name, best_acc = name, acc
        return best_name, best_acc

    def improvement(self, dataset: str, ipc: int) -> float:
        """DECO's % relative improvement over the best baseline."""
        _, best = self.best_baseline(dataset, ipc)
        return relative_improvement(self.cell(dataset, ipc, "deco").mean, best)


def run_table1(*, datasets: Sequence[str] = DEFAULT_DATASETS,
               ipcs: Sequence[int] = DEFAULT_IPCS,
               baselines: Sequence[str] = STRATEGY_NAMES,
               profile: str = "smoke",
               seeds: Sequence[int] = (0,),
               include_upper_bound: bool = True,
               decode_factors: Sequence[int] | None = None,
               jobs: int = 1,
               checkpoint_dir=None,
               resume: bool = False,
               progress=None) -> Table1Result:
    """Regenerate Table I (or any subset of it); ``jobs>1`` runs each
    dataset's (ipc, method, seed) grid in parallel worker processes.

    ``checkpoint_dir`` persists prepared experiments (under ``prepared/``)
    and journals every completed grid point; ``resume=True`` skips the
    journaled points of an interrupted earlier run.  ``progress`` (a
    :class:`repro.obs.SweepProgress`) streams one line per completed grid
    point, labelled per dataset.

    ``decode_factors`` (default: the profile's) adds one extra DECO column
    per factor ``f > 1``, run with factorized storage at ``f**2 x`` the
    row's IpC — same byte budget, ``f**2`` more synthetic images.
    """
    factors = (tuple(decode_factors) if decode_factors is not None
               else get_profile(profile).decode_factors)
    extra_factors = tuple(f for f in factors if f > 1)
    result = Table1Result(datasets=tuple(datasets), ipcs=tuple(ipcs),
                          baselines=tuple(baselines),
                          decode_factors=tuple(sorted({1, *factors})))
    cache_dir = prepared_cache_dir(checkpoint_dir)
    for dataset in datasets:
        prepared = prepare_experiment(dataset, profile, seed=0,
                                      cache_dir=cache_dir)
        grid = [(ipc, method, seed)
                for ipc in ipcs
                for method in list(baselines) + ["deco"]
                for seed in seeds]
        grid += [(ipc, f"deco@f{f}", seed)
                 for ipc in ipcs for f in extra_factors for seed in seeds]
        if include_upper_bound:
            grid += [(1, "upper_bound", s) for s in seeds[:1]]
        configs = []
        for ipc, method, seed in grid:
            if method.startswith("deco@f"):
                f = int(method[len("deco@f"):])
                # Equal byte budget: 1/f**2 the bytes per image buys f**2
                # times the images per class.
                configs.append({"method": "deco", "ipc": ipc * f * f,
                                "seed": seed, "decode_factor": f})
            else:
                configs.append({"method": method, "ipc": ipc, "seed": seed})
        begin_progress(progress, len(configs), label=f"table1/{dataset}",
                       jobs=jobs)
        runs = run_method_grid(
            prepared, configs,
            jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
            progress=progress)
        ub_accs = []
        for (ipc, method, seed), run in zip(grid, runs):
            memory = (run.extra or {}).get("memory")
            if method == "upper_bound":
                ub_accs.append(run.final_accuracy)
                continue
            cell = result.cells.setdefault((dataset, ipc, method), Table1Cell())
            cell.accuracies.append(run.final_accuracy)
            if memory and memory.get("total_bytes"):
                # The footprint is structural (buffer geometry + model),
                # identical across seeds — keep the last one seen.
                result.memory_bytes[(dataset, ipc, method)] = int(
                    memory["total_bytes"])
        if include_upper_bound:
            result.upper_bounds[dataset] = float(np.mean(ub_accs))
    return result


def format_table1(result: Table1Result) -> str:
    """Render the result in the paper's Table I layout.

    Extra decode factors add two columns each: the factorized DECO
    accuracy (same byte budget as the row's IpC, ``f**2 x`` the images)
    and its accuracy per MiB next to the f=1 ``Acc/MiB`` column.
    """
    extra_factors = tuple(f for f in result.decode_factors if f > 1)
    headers = (["Dataset", "IpC"] + list(result.baselines)
               + ["DECO (Ours)", "Improvement", "Acc/MiB"])
    for f in extra_factors:
        headers += [f"DECO f={f}", f"Acc/MiB f={f}"]
    headers.append("Upper Bound")
    rows = []
    for dataset in result.datasets:
        for i, ipc in enumerate(result.ipcs):
            row = [dataset if i == 0 else "", str(ipc)]
            for method in result.baselines:
                cell = result.cell(dataset, ipc, method)
                row.append(format_mean_std(cell.mean, cell.std))
            deco = result.cell(dataset, ipc, "deco")
            row.append(format_mean_std(deco.mean, deco.std))
            row.append(f"{result.improvement(dataset, ipc):+.1f}%")
            per_mib = result.accuracy_per_mib(dataset, ipc, "deco")
            row.append("-" if per_mib != per_mib else f"{per_mib:.1f}")
            for f in extra_factors:
                cell = result.cells.get((dataset, ipc, f"deco@f{f}"))
                row.append("-" if cell is None
                           else format_mean_std(cell.mean, cell.std))
                per_mib = result.accuracy_per_mib(dataset, ipc, f"deco@f{f}")
                row.append("-" if per_mib != per_mib else f"{per_mib:.1f}")
            ub = result.upper_bounds.get(dataset)
            row.append(f"{ub * 100:.2f}%" if (i == 0 and ub is not None) else "")
            rows.append(row)
    return format_table(headers, rows, title="Table I: final average accuracy")
