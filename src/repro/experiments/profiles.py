"""Scale profiles tying datasets, models, streams, and budgets together.

Every experiment runner takes a profile name:

* ``smoke`` — the default for tests and quick benchmark runs: small images,
  narrow networks, short training budgets.  Shapes (method orderings, trend
  directions) are preserved; absolute accuracies are lower.
* ``paper`` — the paper's relative proportions at the largest scale that is
  still CPU-feasible on this numpy substrate.

The per-dataset stream settings mirror §IV-A1: iCub1/CORe50 streams are
session-ordered video-style streams; CIFAR-100/ImageNet-10 use STC-ordered
streams (paper: STC=500 and 100 — with 500 samples per CIFAR-100 class that
means one contiguous run per class, which is what our scaled values keep).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.registry import dataset_spec

__all__ = ["ExperimentProfile", "get_profile", "stream_settings",
           "learning_rate", "pretrain_fraction", "PROFILE_NAMES"]

PROFILE_NAMES = ("micro", "smoke", "paper")


@dataclass(frozen=True)
class ExperimentProfile:
    """Bundle of scale-dependent experiment parameters.

    Attributes
    ----------
    name:
        Profile identifier.
    dataset_profile:
        Which registry size variant to load.
    model_width / model_depth:
        ConvNet filters per block / number of blocks.
    segment_size:
        Stream segment (= sliding window) size ``|I_t|``.
    pretrain_epochs:
        Offline pre-training epochs before deployment.
    train_epochs:
        Model-update epochs on the buffer (paper: 200; scaled).
    condense_iterations:
        ``L`` — synthetic updates per segment (paper: 10).
    offline_condense_rounds:
        Offline condensation rounds for buffer initialization.
    num_seeds:
        Trials per configuration (paper: 5).
    memory_budget_mb:
        Declared on-device memory budget (MiB) for the learner's persistent
        state (buffer payload + deployed model).  Observational — the
        per-segment ``memory`` telemetry events and the accuracy-per-byte
        report columns are judged against it; nothing is throttled.
    decode_factors:
        Factorized-storage sweep of the table1 report: for every factor
        ``f > 1`` an extra DECO column runs with the synthetic buffer
        stored at ``1/f`` linear resolution and ``f**2 x`` the IpC — the
        equal-byte-budget comparison (accuracy per MiB) DREAM-style
        multi-formation storage is about.
    """

    name: str
    dataset_profile: str
    model_width: int
    model_depth: int
    segment_size: int
    pretrain_epochs: int
    train_epochs: int
    condense_iterations: int
    offline_condense_rounds: int
    num_seeds: int
    memory_budget_mb: int = 64
    decode_factors: tuple[int, ...] = (1, 2)


_PROFILES = {
    "micro": ExperimentProfile(
        name="micro", dataset_profile="micro", model_width=8, model_depth=2,
        segment_size=8, pretrain_epochs=6, train_epochs=5,
        condense_iterations=2, offline_condense_rounds=1, num_seeds=1,
        memory_budget_mb=8),
    "smoke": ExperimentProfile(
        name="smoke", dataset_profile="smoke", model_width=16, model_depth=2,
        segment_size=15, pretrain_epochs=20, train_epochs=12,
        condense_iterations=10, offline_condense_rounds=1, num_seeds=1,
        memory_budget_mb=32),
    "paper": ExperimentProfile(
        name="paper", dataset_profile="paper", model_width=32, model_depth=3,
        segment_size=24, pretrain_epochs=40, train_epochs=60,
        condense_iterations=10, offline_condense_rounds=2, num_seeds=5,
        memory_budget_mb=128),
}

# Per-dataset on-device learning rates (§IV-A3: 1e-3 everywhere except
# ImageNet-10's 1e-4; we keep the ratio but raise both because our training
# budgets are much shorter).
_LEARNING_RATES = {"imagenet10": 3e-3}
_DEFAULT_LR = 1e-2

# Pre-training label fractions.  The paper uses 1% (10% for CIFAR-100) of
# datasets with hundreds of samples per class; our pools are much smaller,
# so fractions are scaled to land on a comparable handful of labeled
# samples per class.
_PRETRAIN_FRACTIONS = {
    "micro": {"cifar100": 0.30, "default": 0.25},
    "smoke": {"cifar100": 0.25, "default": 0.10},
    "paper": {"cifar100": 0.10, "default": 0.05},
}


def get_profile(name: str) -> ExperimentProfile:
    """Look up an :class:`ExperimentProfile` by name."""
    if name not in _PROFILES:
        raise KeyError(f"unknown profile {name!r}; available: {PROFILE_NAMES}")
    return _PROFILES[name]


def learning_rate(dataset_name: str) -> float:
    """On-device learning rate for a dataset (§IV-A3)."""
    return _LEARNING_RATES.get(dataset_name, _DEFAULT_LR)


def pretrain_fraction(dataset_name: str, profile: str) -> float:
    """Labeled fraction used for offline pre-training."""
    table = _PRETRAIN_FRACTIONS[profile]
    return table.get(dataset_name, table["default"])


def stream_settings(dataset_name: str, profile: str) -> dict:
    """Stream-ordering kwargs for :func:`repro.data.make_stream`.

    iCub1/CORe50 are session-ordered; CIFAR-100/ImageNet-10/CIFAR-10 use
    STC runs sized relative to their per-class pools, mirroring the paper's
    STC=500 / STC=100 choices.
    """
    if dataset_name in ("icub1", "core50"):
        return {"session_ordered": True, "stc": None}
    spec = dataset_spec(dataset_name, profile)
    if dataset_name == "cifar100":
        # Paper: STC=500 with 500 samples/class = one run per class.
        return {"session_ordered": False, "stc": spec.train_per_class}
    # ImageNet-10-style: a few runs per class (paper: STC=100, ~1300/class).
    return {"session_ordered": False, "stc": max(10, spec.train_per_class // 2)}
