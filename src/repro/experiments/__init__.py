"""Experiment runners that regenerate each paper table and figure.

One module per experiment:

* :mod:`.table1` — final accuracy comparison (Table I)
* :mod:`.table2` — condensation time/accuracy (Table II)
* :mod:`.fig2` — misclassification structure (Fig. 2)
* :mod:`.fig3` — learning curves (Fig. 3)
* :mod:`.fig4` — threshold and alpha sweeps (Fig. 4a/4b)
* :mod:`.ablations` — design-choice ablations (beyond the paper)
"""

from .ablations import AblationResult, format_ablations, run_ablations
from .common import (METHOD_NAMES, MethodResult, PreparedExperiment,
                     prepare_experiment, run_method, run_seeds)
from .fig2 import Fig2Result, format_fig2, run_fig2
from .fig3 import (Fig3Result, LearningCurve, curve_smoothness, data_to_reach,
                   format_fig3, run_fig3)
from .fig4 import (Fig4aResult, Fig4bResult, format_fig4a, format_fig4b,
                   run_fig4a, run_fig4b)
from .grid import run_method_grid
from .noise import (NoiseRobustnessResult, NoisyPseudoLabeler,
                    format_noise_robustness, run_noise_robustness)
from .profiles import (PROFILE_NAMES, ExperimentProfile, get_profile,
                       learning_rate, pretrain_fraction, stream_settings)
from .table1 import Table1Result, format_table1, run_table1
from .table2 import Table2Result, format_table2, run_table2

__all__ = [
    "prepare_experiment", "run_method", "run_seeds", "run_method_grid",
    "MethodResult",
    "PreparedExperiment", "METHOD_NAMES",
    "ExperimentProfile", "get_profile", "PROFILE_NAMES",
    "learning_rate", "pretrain_fraction", "stream_settings",
    "Table1Result", "run_table1", "format_table1",
    "Table2Result", "run_table2", "format_table2",
    "Fig2Result", "run_fig2", "format_fig2",
    "Fig3Result", "LearningCurve", "run_fig3", "format_fig3",
    "curve_smoothness", "data_to_reach",
    "Fig4aResult", "Fig4bResult", "run_fig4a", "run_fig4b",
    "format_fig4a", "format_fig4b",
    "AblationResult", "run_ablations", "format_ablations",
    "NoisyPseudoLabeler", "NoiseRobustnessResult", "run_noise_robustness",
    "format_noise_robustness",
]
