"""Plain-text table/series formatting for experiment reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_mean_std", "format_bytes"]


def format_mean_std(mean: float, std: float, *, scale: float = 100.0,
                    digits: int = 2) -> str:
    """Render an accuracy as the paper does: ``29.84±0.26`` (percent)."""
    return f"{mean * scale:.{digits}f}±{std * scale:.{digits}f}"


def format_bytes(nbytes: float) -> str:
    """Render a byte count human-readably: ``312.0KiB``, ``4.9MiB``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{value:.0f}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Render a monospace table with per-column alignment."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float], *,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as aligned (x, y) pairs."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>10g}  {y:.4f}")
    return "\n".join(lines)
