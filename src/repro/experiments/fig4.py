"""Fig. 4: hyper-parameter analyses.

* **Fig. 4a** — sweep the majority-voting threshold ``m`` and record (i) the
  fraction of stream data retained after filtering, (ii) the accuracy of
  the retained pseudo-labels, and (iii) the final model accuracy.  Expected
  shape: retention falls and label accuracy rises with ``m``; model
  accuracy peaks at a moderate threshold (paper: m = 0.4).
* **Fig. 4b** — sweep the feature-discrimination weight ``alpha`` on the
  CIFAR-100-like dataset at IpC in {5, 10}.  Expected shape: accuracy
  improves from alpha=0 up to ~0.1 and degrades for large alpha.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .common import prepare_experiment
from .grid import begin_progress, prepared_cache_dir, run_method_grid
from .reporting import format_table

__all__ = ["Fig4aPoint", "Fig4aResult", "run_fig4a", "format_fig4a",
           "Fig4bResult", "run_fig4b", "format_fig4b",
           "DEFAULT_THRESHOLDS", "DEFAULT_ALPHAS"]

DEFAULT_THRESHOLDS = (0.0, 0.2, 0.4, 0.6, 0.8)
DEFAULT_ALPHAS = (0.0, 0.001, 0.01, 0.1, 0.5, 1.0)


@dataclass
class Fig4aPoint:
    """Metrics at one filter threshold."""

    threshold: float
    retained_fraction: float
    pseudo_label_accuracy: float
    model_accuracy: float


@dataclass
class Fig4aResult:
    """The three Fig. 4a curves."""

    dataset: str
    points: list[Fig4aPoint] = field(default_factory=list)

    @property
    def best_threshold(self) -> float:
        return max(self.points, key=lambda p: p.model_accuracy).threshold


def run_fig4a(*, dataset: str = "core50", ipc: int = 10,
              thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
              profile: str = "smoke", seed: int = 0,
              jobs: int = 1, checkpoint_dir=None,
              resume: bool = False, progress=None) -> Fig4aResult:
    """Sweep the majority-voting threshold ``m``."""
    prepared = prepare_experiment(dataset, profile, seed=0,
                                  cache_dir=prepared_cache_dir(checkpoint_dir))
    result = Fig4aResult(dataset=dataset)
    configs = [{"method": "deco", "ipc": ipc, "seed": seed,
                "labeler_threshold": float(m)} for m in thresholds]
    begin_progress(progress, len(configs), label=f"fig4a/{dataset}",
                   jobs=jobs)
    runs = run_method_grid(
        prepared, configs,
        jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        progress=progress)
    for m, run in zip(thresholds, runs):
        retained = [d["retained_fraction"] for d in run.history.diagnostics
                    if "retained_fraction" in d]
        label_acc = [d["retained_label_accuracy"] for d in run.history.diagnostics
                     if "retained_label_accuracy" in d
                     and not np.isnan(d["retained_label_accuracy"])]
        result.points.append(Fig4aPoint(
            threshold=float(m),
            retained_fraction=float(np.mean(retained)) if retained else 0.0,
            pseudo_label_accuracy=float(np.mean(label_acc)) if label_acc else 0.0,
            model_accuracy=run.final_accuracy))
    return result


def format_fig4a(result: Fig4aResult) -> str:
    headers = ["m", "data retained", "pseudo-label acc", "model acc"]
    rows = [[f"{p.threshold:.1f}", f"{p.retained_fraction:.2%}",
             f"{p.pseudo_label_accuracy:.2%}", f"{p.model_accuracy:.2%}"]
            for p in result.points]
    return format_table(headers, rows,
                        title=f"Fig. 4a: filter threshold sweep on "
                              f"{result.dataset} "
                              f"(best m = {result.best_threshold:.1f})")


@dataclass
class Fig4bResult:
    """Accuracy per (alpha, ipc)."""

    dataset: str
    alphas: tuple[float, ...] = ()
    ipcs: tuple[int, ...] = ()
    accuracy: dict[tuple[float, int], float] = field(default_factory=dict)

    def best_alpha(self, ipc: int) -> float:
        return max(self.alphas, key=lambda a: self.accuracy[(a, ipc)])


def run_fig4b(*, dataset: str = "cifar100",
              alphas: Sequence[float] = DEFAULT_ALPHAS,
              ipcs: Sequence[int] = (5, 10),
              profile: str = "smoke", seed: int = 0,
              jobs: int = 1, checkpoint_dir=None,
              resume: bool = False, progress=None) -> Fig4bResult:
    """Sweep the feature-discrimination weight ``alpha``."""
    prepared = prepare_experiment(dataset, profile, seed=0,
                                  cache_dir=prepared_cache_dir(checkpoint_dir))
    result = Fig4bResult(dataset=dataset, alphas=tuple(alphas),
                         ipcs=tuple(ipcs))
    grid = [(ipc, float(alpha)) for ipc in ipcs for alpha in alphas]
    configs = [{"method": "deco", "ipc": ipc, "seed": seed,
                "condenser_kwargs": {"alpha": alpha}} for ipc, alpha in grid]
    begin_progress(progress, len(configs), label=f"fig4b/{dataset}",
                   jobs=jobs)
    runs = run_method_grid(
        prepared, configs,
        jobs=jobs, checkpoint_dir=checkpoint_dir, resume=resume,
        progress=progress)
    for (ipc, alpha), run in zip(grid, runs):
        result.accuracy[(alpha, ipc)] = run.final_accuracy
    return result


def format_fig4b(result: Fig4bResult) -> str:
    headers = ["alpha"] + [f"IpC={ipc}" for ipc in result.ipcs]
    rows = []
    for alpha in result.alphas:
        row = [f"{alpha:g}"]
        for ipc in result.ipcs:
            row.append(f"{result.accuracy[(alpha, ipc)]:.2%}")
        rows.append(row)
    best = ", ".join(f"IpC={ipc}: alpha={result.best_alpha(ipc):g}"
                     for ipc in result.ipcs)
    return format_table(headers, rows,
                        title=f"Fig. 4b: alpha sweep on {result.dataset} "
                              f"(best {best})")
