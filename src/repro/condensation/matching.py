"""Gradient-matching primitives shared by the condensation methods.

Implements the building blocks of §III-C:

* :func:`parameter_gradients` — ``g = grad_theta L(X, Y)`` for a batch
  (one forward-backward pass);
* :func:`input_gradient` — ``grad_X L(X, Y)`` at fixed parameters;
* :func:`distance_and_grad_wrt_gsyn` — evaluates the layer-wise distance
  ``D(g_syn, g_real)`` and its gradient with respect to ``g_syn``
  (the ``grad_{g_syn} D`` factor of Eq. 6);
* :func:`finite_difference_matching_grad` — the paper's five-pass
  finite-difference approximation (Eq. 7) of ``grad_{X'} D``.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

import numpy as np

from .. import obs
from ..data.transforms import AugmentationParams, apply_augmentation
from ..nn import functional as F
from ..nn import kernels
from ..nn.convnet import ConvNet
from ..nn.layers import (AvgPool2d, Conv2d, Flatten, InstanceNorm2d, Linear,
                         Module, ReLU, frozen_parameters)
from ..nn.losses import cross_entropy, gradient_distance
from ..nn.tensor import Tensor
from ..nn.workspace import default_arena, default_step_cache

__all__ = [
    "parameter_gradients",
    "input_gradient",
    "distance_and_grad_wrt_gsyn",
    "finite_difference_matching_grad",
    "gradient_cosine",
    "fd_fuse_stats",
    "reset_fd_fuse_stats",
    "clear_fd_fuse_verdicts",
    "EPSILON_NUMERATOR",
]

# Following DARTS [34] and footnote 2: epsilon = 0.01 / ||grad_{g_syn} D||_2.
EPSILON_NUMERATOR = 0.01


def _forward_loss(model: Module, x: Tensor, y: np.ndarray,
                  w: np.ndarray | None,
                  augmentation: AugmentationParams | None) -> Tensor:
    if augmentation is not None:
        x = apply_augmentation(x, augmentation)
    logits = model(x)
    return cross_entropy(logits, y, weights=w, reduction="mean")


def parameter_gradients(model: Module, x: np.ndarray, y: np.ndarray,
                        w: np.ndarray | None = None, *,
                        augmentation: AugmentationParams | None = None
                        ) -> tuple[list[np.ndarray], float]:
    """Gradients of the (confidence-weighted) CE loss w.r.t. every parameter.

    Returns the per-parameter gradient list (ordered as
    ``model.parameters()``) and the scalar loss value.
    """
    model.zero_grad()
    loss = _forward_loss(model, Tensor(np.asarray(x, dtype=np.float32)), y, w,
                         augmentation)
    loss.backward()
    # zero_grad() below drops the model's references to the gradient arrays,
    # so returning them directly (no .copy()) is safe.
    grads = [np.zeros_like(p.data) if p.grad is None else p.grad
             for p in model.parameters()]
    model.zero_grad()
    return grads, loss.item()


def input_gradient(model: Module, x: np.ndarray, y: np.ndarray,
                   w: np.ndarray | None = None, *,
                   augmentation: AugmentationParams | None = None) -> np.ndarray:
    """Gradient of the CE loss w.r.t. the input pixels at fixed parameters.

    Under the fast kernels the model parameters are temporarily frozen so
    the backward pass skips every parameter-gradient reduction — the FD
    passes of Eq. (7) only consume ``grad_X``.
    """
    x_tensor = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    model.zero_grad()
    freeze = (frozen_parameters(model) if kernels.fast_kernels_enabled()
              else contextlib.nullcontext())
    with freeze:
        loss = _forward_loss(model, x_tensor, y, w, augmentation)
        loss.backward()
    model.zero_grad()
    if x_tensor.grad is None:  # pragma: no cover - defensive
        return np.zeros_like(x_tensor.data)
    return x_tensor.grad


def distance_and_grad_wrt_gsyn(g_syn: Sequence[np.ndarray],
                               g_real: Sequence[np.ndarray], *,
                               metric: str = "cosine"
                               ) -> tuple[float, list[np.ndarray]]:
    """Evaluate ``D(g_syn, g_real)`` and ``grad_{g_syn} D``.

    The distance is built as a small autodiff graph over the gradient
    arrays, so any differentiable metric supported by
    :func:`repro.nn.losses.gradient_distance` works.
    """
    wrapped = [Tensor(g, requires_grad=True) for g in g_syn]
    distance = gradient_distance(wrapped, list(g_real), metric=metric)
    distance.backward()
    grads = [np.zeros_like(t.data) if t.grad is None else t.grad for t in wrapped]
    return distance.item(), grads


def gradient_cosine(g_syn: Sequence[np.ndarray],
                    g_real: Sequence[np.ndarray]) -> float:
    """Cosine between the flattened synthetic and real gradient stacks.

    The condensation-quality scalar: how well ``g_syn`` tracks ``g_real``
    over all layers at once — the quantity gradient matching optimizes.
    Both gradient lists are already materialized by the matching pass, so
    this costs three dot products.  NaN when either stack is zero or
    non-finite.
    """
    dot = sum(float(np.vdot(s, r)) for s, r in zip(g_syn, g_real))
    syn_sq = sum(float(np.vdot(s, s)) for s in g_syn)
    real_sq = sum(float(np.vdot(r, r)) for r in g_real)
    denom = float(np.sqrt(syn_sq) * np.sqrt(real_sq))
    if not np.isfinite(dot) or not np.isfinite(denom) or denom == 0.0:
        return float("nan")
    return dot / denom


# ----------------------------------------------------------------------
# Fused ±ε evaluation
# ----------------------------------------------------------------------
# Module-level bookkeeping for the fused path.  ``_FUSE_VERDICTS`` caches,
# per (architecture, input shape) signature, whether the fused evaluation
# reproduced the sequential two-pass bytes on its first use — the same
# probe-then-trust pattern as ``ConvPlan.shard_safe``, one level up.
_FD_STATS = {"fused_dispatches": 0, "serial_fallbacks": 0,
             "verifications": 0, "verification_failures": 0}
_FUSE_VERDICTS: dict[tuple, bool] = {}

#: Layer types the lane-grouped evaluator knows how to batch-stack (the
#: ConvNet backbone's exact vocabulary — anything else falls back serial).
_LANE_LAYERS = (Conv2d, InstanceNorm2d, ReLU, AvgPool2d, Flatten)


def fd_fuse_stats() -> dict[str, int]:
    """Module-level fused-FD counters (pulled as gauges by the telemetry
    layer; the live obs counters are emitted at dispatch time)."""
    return dict(_FD_STATS)


def reset_fd_fuse_stats() -> None:
    for key in _FD_STATS:
        _FD_STATS[key] = 0


def clear_fd_fuse_verdicts() -> None:
    """Forget cached first-use verdicts (tests only — forces re-probing)."""
    _FUSE_VERDICTS.clear()


def _fuse_layout(model: Module):
    """``(encoder_layers, classifier)`` when ``model`` has the ConvNet
    structure the lane evaluator supports, else ``None``."""
    if not isinstance(model, ConvNet):
        return None
    layers = list(model.encoder)
    if not layers or not isinstance(layers[0], Conv2d):
        return None
    for layer in layers:
        if not isinstance(layer, _LANE_LAYERS):
            return None
    clf = model.classifier
    if not isinstance(clf, Linear):
        return None
    return layers, clf


def _fuse_key(layers, clf, x_shape) -> tuple:
    """Structural signature the first-use verification verdict is cached by."""
    desc = []
    for layer in layers:
        if isinstance(layer, Conv2d):
            desc.append(("conv", layer.out_channels, layer.in_channels,
                         layer.kernel_size, layer.stride, layer.padding,
                         layer.bias is not None))
        elif isinstance(layer, InstanceNorm2d):
            desc.append(("inorm", layer.num_channels, float(layer.eps),
                         layer.gamma is not None, layer.beta is not None))
        elif isinstance(layer, ReLU):
            desc.append(("relu",))
        elif isinstance(layer, AvgPool2d):
            desc.append(("avg", layer.kernel_size))
        else:  # Flatten
            desc.append(("flat", layer.start_dim))
    desc.append(("linear", clf.out_features, clf.in_features,
                 clf.bias is not None))
    # The composite col2im / contraction routes are probed per scatter mode;
    # the whole-evaluation verdict must not outlive a mode switch either.
    return (tuple(desc), tuple(int(s) for s in x_shape),
            kernels.scatter_mode())


def _lane_param_sets(params, direction, eps):
    """The +ε / −ε parameter arrays, computed with the exact operations the
    sequential path uses (``eps*d + orig`` and ``orig - eps*d``)."""
    plus, minus = [], []
    for p, d in zip(params, direction):
        orig = p.data
        pd = np.multiply(d, eps)
        plus.append(pd + orig)
        minus.append(np.subtract(orig, pd))
    return plus, minus


def _fused_input_gradients(layers, clf, syn_x, syn_y, plus, minus, index_of):
    """Both perturbed input-gradient passes as one grouped forward/backward.

    Lane 0 (+ε) occupies composite batch rows ``[0, n)``, lane 1 (−ε) rows
    ``[n, 2n)``.  The first conv shares one im2col of ``syn_x`` between the
    lanes (and, via the StepCache, with ``pass.g_syn``); the classifier tail
    runs per lane so each loss graph matches the sequential one node for
    node.  Raises :class:`~repro.nn.functional.FusedPathUnavailable` when
    the composite layout cannot reproduce the serial bytes for this shape.
    """
    n = syn_x.shape[0]
    lanes = (plus, minus)

    first = layers[0]
    w_first = [lane[index_of[id(first.weight)]] for lane in lanes]
    b_first = ([lane[index_of[id(first.bias)]] for lane in lanes]
               if first.bias is not None else [None, None])
    h, first_backward = F.conv2d_lanes_shared(
        syn_x, w_first, b_first, stride=first.stride, padding=first.padding)
    # Hand-chained closures instead of a Tensor graph: the encoder is a
    # straight line, so topological bookkeeping and gradient accumulation
    # buy nothing here — each op returns its ndarray and a backward closure
    # computing exactly the bytes the Tensor op's backward would.
    bwds = []
    for layer in layers[1:]:
        if isinstance(layer, Conv2d):
            ws = [lane[index_of[id(layer.weight)]] for lane in lanes]
            bs = ([lane[index_of[id(layer.bias)]] for lane in lanes]
                  if layer.bias is not None else [None, None])
            h, bwd = F.conv2d_lanes(h, ws, bs, stride=layer.stride,
                                    padding=layer.padding)
        elif isinstance(layer, InstanceNorm2d):
            gs = ([lane[index_of[id(layer.gamma)]] for lane in lanes]
                  if layer.gamma is not None else [None, None])
            bs = ([lane[index_of[id(layer.beta)]] for lane in lanes]
                  if layer.beta is not None else [None, None])
            h, bwd = F.instance_norm2d_lanes(h, gs, bs, eps=layer.eps)
        elif isinstance(layer, ReLU):
            src = h
            h = np.maximum(src, 0.0)
            bwd = (lambda g, src=src: g * (src > 0))
        elif isinstance(layer, AvgPool2d):
            k = int(layer.kernel_size)
            nt, c, hh, ww = h.shape
            oh, ow = hh // k, ww // k
            h = h.reshape(nt, c, oh, k, ow, k).mean(axis=(3, 5))

            def bwd(g, k=k, nt=nt, c=c, oh=oh, ow=ow, hh=hh, ww=ww):
                scaled = g * np.float32(1.0 / (k * k))
                return np.broadcast_to(
                    scaled[:, :, :, None, :, None],
                    (nt, c, oh, k, ow, k)).reshape(nt, c, hh, ww)
        else:  # Flatten
            shape = h.shape
            h = h.reshape(shape[:layer.start_dim] + (-1,))
            bwd = (lambda g, shape=shape: g.reshape(shape))
        bwds.append(bwd)

    # Classifier tail per lane, replicated in closed form: linear →
    # log-softmax → mean NLL, with each ufunc written exactly as the
    # Tensor ops compute it (same operand views, same in-place updates,
    # same float32 scalars) so the feature gradient is bit-identical to
    # ``loss.backward()`` on the sequential graph.
    feats = h
    labels = np.asarray(syn_y, dtype=np.int64)
    rows = np.arange(n)
    # d(mean NLL)/d(picked log-prob): backward seeds with ones, the mean
    # multiplies by float32(1/n), the negation flips it.
    neg_inv = -(np.float32(1.0) * np.float32(1.0 / n))
    seeds = []
    for t, lane in enumerate(lanes):
        f_l = feats[t * n:(t + 1) * n]
        w = lane[index_of[id(clf.weight)]]
        logits = f_l @ w.T
        if clf.bias is not None:
            logits = logits + lane[index_of[id(clf.bias)]]
        # log_softmax fast path (forward), keeping softmax for backward.
        out = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(out)
        out -= np.log(e.sum(axis=1, keepdims=True))
        softmax_vals = np.exp(out)
        # Backward: scatter -1/n into the picked entries, then the
        # log-softmax and matmul gradients.
        g_lp = np.zeros_like(out)
        g_lp[rows, labels] = neg_inv
        g_logits = g_lp - softmax_vals * g_lp.sum(axis=1, keepdims=True)
        seeds.append(g_logits @ w)
    g = np.concatenate(seeds, axis=0)
    for bwd in reversed(bwds):
        g = bwd(g)
    dx2 = first_backward(g)
    return dx2[:n], dx2[n:]


def _serial_fd_passes(model, params, syn_x, syn_y, direction, eps,
                      augmentation):
    """The sequential two-pass evaluation (the pre-fusion code path).

    The perturbed passes never mutate parameter arrays in place (they only
    rebind ``p.data``), so the current arrays themselves are the exact
    restore points — no per-iteration snapshot copies needed.  The
    perturbed values go into arena scratch: ``buf = eps*d; buf += orig``
    and ``buf = eps*d; buf = orig - buf`` reproduce the former
    ``orig + eps*d`` / ``orig - eps*d`` bit for bit (float add is
    commutative; the subtraction is the identical operation).
    """
    originals = [p.data for p in params]
    buffers = [default_arena.acquire(p.data.shape, np.float32) for p in params]
    try:
        for p, buf, orig, d in zip(params, buffers, originals, direction):
            np.multiply(d, eps, out=buf)
            buf += orig
            p.data = buf
        with obs.span("pass.fd_plus"):
            grad_plus = input_gradient(model, syn_x, syn_y,
                                       augmentation=augmentation)
        for p, buf, orig, d in zip(params, buffers, originals, direction):
            np.multiply(d, eps, out=buf)
            np.subtract(orig, buf, out=buf)
            p.data = buf
        with obs.span("pass.fd_minus"):
            grad_minus = input_gradient(model, syn_x, syn_y,
                                        augmentation=augmentation)
    finally:
        for p, orig in zip(params, originals):
            p.data = orig
        for buf in buffers:
            default_arena.release(buf)
    return grad_plus, grad_minus


def finite_difference_matching_grad(model: Module, syn_x: np.ndarray,
                                    syn_y: np.ndarray,
                                    direction: Sequence[np.ndarray], *,
                                    augmentation: AugmentationParams | None = None,
                                    epsilon_numerator: float = EPSILON_NUMERATOR,
                                    stats_out: dict | None = None
                                    ) -> np.ndarray:
    """Approximate ``grad_{X'} D`` via Eq. (7).

    Shifts the model parameters by ``±eps * direction`` where ``direction``
    is ``grad_{g_syn} D`` and ``eps = epsilon_numerator / ||direction||_2``,
    and differences the resulting input gradients.  The model parameters
    are restored exactly afterwards.

    When the fused path is enabled (``REPRO_FD_FUSE``, fast kernels, no
    augmentation) and the model has the supported ConvNet structure, both
    perturbed passes run as one batch-stacked forward/backward.  The first
    fused-eligible call per (architecture, shape) signature evaluates both
    paths and byte-compares them; a mismatch pins that signature to the
    sequential path permanently (``fd.serial_fallbacks``), a match lets
    subsequent calls dispatch fused directly (``fd.fused_dispatches``).

    ``stats_out``, when given, receives ``{"passes": 0|1|2, "fused": bool}``
    — the number of forward/backward evaluations that actually ran, for the
    condense drivers' derived pass accounting.
    """
    with obs.span("pass.fd_total"):
        return _fd_matching_grad(model, syn_x, syn_y, direction,
                                 augmentation=augmentation,
                                 epsilon_numerator=epsilon_numerator,
                                 stats_out=stats_out)


def _fd_matching_grad(model, syn_x, syn_y, direction, *, augmentation,
                      epsilon_numerator, stats_out):
    params = model.parameters()
    if len(params) != len(direction):
        raise ValueError("direction list does not match model parameters")
    norm = float(np.sqrt(sum(float((d ** 2).sum()) for d in direction)))
    if not obs.get_monitor().check("fd.direction_norm", norm):
        # skip-step: a non-finite direction cannot produce a usable FD
        # step; hand back a zero matching gradient (like the norm == 0
        # case) so the caller's update stays finite.  Under ``record``
        # the check returns True and the bytes below are unchanged.
        if stats_out is not None:
            stats_out["passes"] = 0
            stats_out["fused"] = False
        return np.zeros_like(np.asarray(syn_x, dtype=np.float32))
    if norm == 0.0:
        if stats_out is not None:
            stats_out["passes"] = 0
            stats_out["fused"] = False
        return np.zeros_like(np.asarray(syn_x, dtype=np.float32))
    eps = epsilon_numerator / norm
    syn_x32 = np.asarray(syn_x, dtype=np.float32)

    fuse_eligible = (augmentation is None and kernels.fast_kernels_enabled()
                     and kernels.fd_fuse_enabled())
    layout = _fuse_layout(model) if fuse_eligible else None
    fused = False
    if layout is None:
        grad_plus, grad_minus = _serial_fd_passes(
            model, params, syn_x32, syn_y, direction, eps, augmentation)
        if kernels.fd_fuse_enabled() and kernels.fast_kernels_enabled():
            _FD_STATS["serial_fallbacks"] += 1
            obs.counter("fd.serial_fallbacks")
    else:
        layers, clf = layout
        key = _fuse_key(layers, clf, syn_x32.shape)
        verdict = _FUSE_VERDICTS.get(key)
        index_of = {id(p): i for i, p in enumerate(params)}
        with default_step_cache.scope(syn_x32):
            if verdict is None:
                # First use for this signature: run both paths and demand
                # byte identity before trusting the fused one.
                _FD_STATS["verifications"] += 1
                plus, minus = _lane_param_sets(params, direction, eps)
                try:
                    with obs.span("pass.fd_fused"):
                        fused_pm = _fused_input_gradients(
                            layers, clf, syn_x32, syn_y, plus, minus,
                            index_of)
                except F.FusedPathUnavailable:
                    fused_pm = None
                # The sequential reference is probe work: it only exists to
                # validate the fused bytes, and it runs in whichever process
                # first sees this signature (verdicts ride along fork into
                # sweep workers).  Emit no telemetry for it so counter
                # parity between serial and worker runs is preserved.
                with obs.scoped_telemetry(obs.Telemetry()):
                    serial_pm = _serial_fd_passes(
                        model, params, syn_x32, syn_y, direction, eps,
                        augmentation)
                ok = (fused_pm is not None
                      and np.array_equal(fused_pm[0], serial_pm[0])
                      and np.array_equal(fused_pm[1], serial_pm[1]))
                if not ok:
                    _FD_STATS["verification_failures"] += 1
                _FUSE_VERDICTS[key] = ok
                fused = ok
                grad_plus, grad_minus = serial_pm
            elif verdict:
                plus, minus = _lane_param_sets(params, direction, eps)
                try:
                    with obs.span("pass.fd_fused"):
                        grad_plus, grad_minus = _fused_input_gradients(
                            layers, clf, syn_x32, syn_y, plus, minus,
                            index_of)
                    fused = True
                except F.FusedPathUnavailable:  # pragma: no cover - defensive
                    grad_plus, grad_minus = _serial_fd_passes(
                        model, params, syn_x32, syn_y, direction, eps,
                        augmentation)
            else:
                grad_plus, grad_minus = _serial_fd_passes(
                    model, params, syn_x32, syn_y, direction, eps,
                    augmentation)
        if fused:
            _FD_STATS["fused_dispatches"] += 1
            obs.counter("fd.fused_dispatches")
        else:
            _FD_STATS["serial_fallbacks"] += 1
            obs.counter("fd.serial_fallbacks")

    if stats_out is not None:
        stats_out["passes"] = 1 if fused else 2
        stats_out["fused"] = fused
    return (grad_plus - grad_minus) / (2.0 * eps)
