"""Gradient-matching primitives shared by the condensation methods.

Implements the building blocks of §III-C:

* :func:`parameter_gradients` — ``g = grad_theta L(X, Y)`` for a batch
  (one forward-backward pass);
* :func:`input_gradient` — ``grad_X L(X, Y)`` at fixed parameters;
* :func:`distance_and_grad_wrt_gsyn` — evaluates the layer-wise distance
  ``D(g_syn, g_real)`` and its gradient with respect to ``g_syn``
  (the ``grad_{g_syn} D`` factor of Eq. 6);
* :func:`finite_difference_matching_grad` — the paper's five-pass
  finite-difference approximation (Eq. 7) of ``grad_{X'} D``.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

import numpy as np

from .. import obs
from ..data.transforms import AugmentationParams, apply_augmentation
from ..nn import kernels
from ..nn.layers import Module, frozen_parameters
from ..nn.losses import cross_entropy, gradient_distance
from ..nn.tensor import Tensor
from ..nn.workspace import default_arena

__all__ = [
    "parameter_gradients",
    "input_gradient",
    "distance_and_grad_wrt_gsyn",
    "finite_difference_matching_grad",
    "EPSILON_NUMERATOR",
]

# Following DARTS [34] and footnote 2: epsilon = 0.01 / ||grad_{g_syn} D||_2.
EPSILON_NUMERATOR = 0.01


def _forward_loss(model: Module, x: Tensor, y: np.ndarray,
                  w: np.ndarray | None,
                  augmentation: AugmentationParams | None) -> Tensor:
    if augmentation is not None:
        x = apply_augmentation(x, augmentation)
    logits = model(x)
    return cross_entropy(logits, y, weights=w, reduction="mean")


def parameter_gradients(model: Module, x: np.ndarray, y: np.ndarray,
                        w: np.ndarray | None = None, *,
                        augmentation: AugmentationParams | None = None
                        ) -> tuple[list[np.ndarray], float]:
    """Gradients of the (confidence-weighted) CE loss w.r.t. every parameter.

    Returns the per-parameter gradient list (ordered as
    ``model.parameters()``) and the scalar loss value.
    """
    model.zero_grad()
    loss = _forward_loss(model, Tensor(np.asarray(x, dtype=np.float32)), y, w,
                         augmentation)
    loss.backward()
    # zero_grad() below drops the model's references to the gradient arrays,
    # so returning them directly (no .copy()) is safe.
    grads = [np.zeros_like(p.data) if p.grad is None else p.grad
             for p in model.parameters()]
    model.zero_grad()
    return grads, loss.item()


def input_gradient(model: Module, x: np.ndarray, y: np.ndarray,
                   w: np.ndarray | None = None, *,
                   augmentation: AugmentationParams | None = None) -> np.ndarray:
    """Gradient of the CE loss w.r.t. the input pixels at fixed parameters.

    Under the fast kernels the model parameters are temporarily frozen so
    the backward pass skips every parameter-gradient reduction — the FD
    passes of Eq. (7) only consume ``grad_X``.
    """
    x_tensor = Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    model.zero_grad()
    freeze = (frozen_parameters(model) if kernels.fast_kernels_enabled()
              else contextlib.nullcontext())
    with freeze:
        loss = _forward_loss(model, x_tensor, y, w, augmentation)
        loss.backward()
    model.zero_grad()
    if x_tensor.grad is None:  # pragma: no cover - defensive
        return np.zeros_like(x_tensor.data)
    return x_tensor.grad


def distance_and_grad_wrt_gsyn(g_syn: Sequence[np.ndarray],
                               g_real: Sequence[np.ndarray], *,
                               metric: str = "cosine"
                               ) -> tuple[float, list[np.ndarray]]:
    """Evaluate ``D(g_syn, g_real)`` and ``grad_{g_syn} D``.

    The distance is built as a small autodiff graph over the gradient
    arrays, so any differentiable metric supported by
    :func:`repro.nn.losses.gradient_distance` works.
    """
    wrapped = [Tensor(g, requires_grad=True) for g in g_syn]
    distance = gradient_distance(wrapped, list(g_real), metric=metric)
    distance.backward()
    grads = [np.zeros_like(t.data) if t.grad is None else t.grad for t in wrapped]
    return distance.item(), grads


def finite_difference_matching_grad(model: Module, syn_x: np.ndarray,
                                    syn_y: np.ndarray,
                                    direction: Sequence[np.ndarray], *,
                                    augmentation: AugmentationParams | None = None,
                                    epsilon_numerator: float = EPSILON_NUMERATOR
                                    ) -> np.ndarray:
    """Approximate ``grad_{X'} D`` via Eq. (7).

    Shifts the model parameters by ``±eps * direction`` where ``direction``
    is ``grad_{g_syn} D`` and ``eps = epsilon_numerator / ||direction||_2``,
    and differences the resulting input gradients.  The model parameters are
    restored exactly afterwards.
    """
    params = model.parameters()
    if len(params) != len(direction):
        raise ValueError("direction list does not match model parameters")
    norm = float(np.sqrt(sum(float((d ** 2).sum()) for d in direction)))
    if norm == 0.0:
        return np.zeros_like(np.asarray(syn_x, dtype=np.float32))
    eps = epsilon_numerator / norm

    # The perturbed passes never mutate parameter arrays in place (they only
    # rebind ``p.data``), so the current arrays themselves are the exact
    # restore points — no per-iteration snapshot copies needed.  The
    # perturbed values go into arena scratch: ``buf = eps*d; buf += orig``
    # and ``buf = eps*d; buf = orig - buf`` reproduce the former
    # ``orig + eps*d`` / ``orig - eps*d`` bit for bit (float add is
    # commutative; the subtraction is the identical operation).
    originals = [p.data for p in params]
    buffers = [default_arena.acquire(p.data.shape, np.float32) for p in params]
    try:
        for p, buf, orig, d in zip(params, buffers, originals, direction):
            np.multiply(d, eps, out=buf)
            buf += orig
            p.data = buf
        with obs.span("pass.fd_plus"):
            grad_plus = input_gradient(model, syn_x, syn_y,
                                       augmentation=augmentation)
        for p, buf, orig, d in zip(params, buffers, originals, direction):
            np.multiply(d, eps, out=buf)
            np.subtract(orig, buf, out=buf)
            p.data = buf
        with obs.span("pass.fd_minus"):
            grad_minus = input_gradient(model, syn_x, syn_y,
                                        augmentation=augmentation)
    finally:
        for p, orig in zip(params, originals):
            p.data = orig
        for buf in buffers:
            default_arena.release(buf)
    return (grad_plus - grad_minus) / (2.0 * eps)
