"""Fused finite-difference engine self-check (fd leg of repro-check).

Run as ``python -m repro.condensation.fd_selfcheck``.  Exercises the
fused ±ε evaluator end to end the way the Eq. 7 matcher uses it:

1. **Bit-identity** — on the learner-test and micro-profile ConvNet
   shapes, the fused (lane-grouped) evaluation must return byte-identical
   input gradients to the sequential two-pass path, eval after eval.
2. **Counter parity** — exactly one in-situ verification per
   (architecture, shape) signature, every eval a fused dispatch, zero
   serial fallbacks and zero verification failures.
3. **Segment equivalence** — a micro-profile condense segment run fused
   vs. unfused produces byte-identical synthetic pixels, with every
   iteration's FD evaluation fused (one pass saved per iteration) and no
   StepCache entries leaked past the segment scope.
"""

from __future__ import annotations

import sys
import time

import numpy as np

#: (input shape, classes, width, depth, batch) — the learner-test ConvNet
#: and the micro-profile learner shapes.
SHAPES = (
    ((1, 8, 8), 3, 4, 2, 6),
    ((3, 8, 8), 4, 8, 2, 8),
)


class SelfCheckFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SelfCheckFailure(message)


def main() -> int:
    from ..buffer.buffer import SyntheticBuffer
    from ..nn import kernels
    from ..nn.convnet import ConvNet
    from ..nn.workspace import default_step_cache
    from . import matching
    from .one_step import OneStepMatcher

    t0 = time.perf_counter()
    saved_fuse = kernels.fd_fuse_enabled()
    saved_fast = kernels.fast_kernels_enabled()
    kernels.set_fast_kernels(True)
    try:
        evals = 4
        for shape, classes, width, depth, n in SHAPES:
            print(f"[fd-selfcheck] bit-identity: ConvNet {shape} width "
                  f"{width} depth {depth}, {evals} evals")
            rng = np.random.default_rng(1)
            model = ConvNet(shape[0], classes, shape[-1], width=width,
                            depth=depth, rng=np.random.default_rng(8))
            x = rng.standard_normal((n, *shape)).astype(np.float32)
            y = rng.integers(0, classes, size=n).astype(np.int64)
            direction = [rng.standard_normal(p.data.shape).astype(np.float32)
                         for p in model.parameters()]

            kernels.set_fd_fuse(False)
            reference = matching.finite_difference_matching_grad(
                model, x, y, direction)

            kernels.set_fd_fuse(True)
            matching.clear_fd_fuse_verdicts()
            matching.reset_fd_fuse_stats()
            for i in range(evals):
                got = matching.finite_difference_matching_grad(
                    model, x, y, direction)
                _check(np.array_equal(reference, got),
                       f"fused FD gradient diverged from the sequential "
                       f"bytes on eval {i} for shape {shape}")
            counts = matching.fd_fuse_stats()
            _check(counts["verifications"] == 1,
                   f"expected exactly 1 verification, saw {counts}")
            _check(counts["verification_failures"] == 0,
                   f"in-situ verification failed: {counts}")
            _check(counts["fused_dispatches"] == evals,
                   f"every eval must dispatch fused: {counts}")
            _check(counts["serial_fallbacks"] == 0,
                   f"unexpected serial fallback: {counts}")

        iterations = 6
        print(f"[fd-selfcheck] segment equivalence: micro-profile segment, "
              f"{iterations} iterations, fused vs. unfused")

        def run_segment(fuse: bool):
            kernels.set_fd_fuse(fuse)
            buf = SyntheticBuffer(4, 2, (3, 8, 8))
            buf.images[:] = np.random.default_rng(3).standard_normal(
                buf.images.shape).astype(np.float32)
            real_x = np.random.default_rng(4).standard_normal(
                (32, 3, 8, 8)).astype(np.float32)
            real_y = np.random.default_rng(5).integers(0, 4, 32)
            matcher = OneStepMatcher(iterations=iterations, alpha=0.1)
            deployed = ConvNet(3, 4, 8, width=8, depth=2,
                               rng=np.random.default_rng(6))
            factory = lambda r: ConvNet(3, 4, 8, width=8, depth=2, rng=r)
            stats = matcher.condense(
                buf, [0, 1, 2, 3], real_x, real_y, None,
                model_factory=factory, rng=np.random.default_rng(7),
                deployed_model=deployed)
            return buf.images.copy(), stats

        matching.clear_fd_fuse_verdicts()
        matching.reset_fd_fuse_stats()
        fused_img, fused_stats = run_segment(True)
        counts = matching.fd_fuse_stats()
        unfused_img, unfused_stats = run_segment(False)
        _check(np.array_equal(fused_img, unfused_img),
               "condensed pixels diverge between fused and unfused runs")
        _check(fused_stats.extra.get("fused") == iterations,
               f"every iteration should evaluate fused: "
               f"{fused_stats.extra}")
        _check(counts["verifications"] == 1
               and counts["fused_dispatches"] == iterations
               and counts["serial_fallbacks"] == 0,
               f"segment counter parity violated: {counts}")
        _check(fused_stats.forward_backward_passes
               == unfused_stats.forward_backward_passes - iterations,
               "fusing must save exactly one pass per iteration "
               f"({fused_stats.forward_backward_passes} vs "
               f"{unfused_stats.forward_backward_passes})")
        _check(default_step_cache.stats()["entries"] == 0,
               "StepCache leaked entries past the segment scope")
    finally:
        kernels.set_fd_fuse(saved_fuse)
        kernels.set_fast_kernels(saved_fast)
        matching.clear_fd_fuse_verdicts()
        matching.reset_fd_fuse_stats()

    print(f"[fd-selfcheck] OK: fused engine bit-identical with clean "
          f"counters ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SelfCheckFailure as exc:
        print(f"[fd-selfcheck] FAILED: {exc}")
        sys.exit(1)
