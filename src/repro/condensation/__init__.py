"""Dataset condensation methods: DECO one-step matching and DC/DSA/DM baselines."""

from .base import CondensationMethod, CondensationStats, ModelFactory
from .dc import DCMatcher
from .dm import DMMatcher
from .dsa import DSAMatcher
from .matching import (distance_and_grad_wrt_gsyn,
                       finite_difference_matching_grad, input_gradient,
                       parameter_gradients)
from .one_step import OneStepMatcher

CONDENSER_NAMES = ("deco", "dc", "dsa", "dm")


def make_condenser(name: str, **kwargs) -> CondensationMethod:
    """Instantiate a condensation method by its registry name."""
    factories = {
        "deco": OneStepMatcher,
        "dc": DCMatcher,
        "dsa": DSAMatcher,
        "dm": DMMatcher,
    }
    if name not in factories:
        raise KeyError(f"unknown condenser {name!r}; available: {CONDENSER_NAMES}")
    return factories[name](**kwargs)


__all__ = [
    "CondensationMethod", "CondensationStats", "ModelFactory",
    "OneStepMatcher", "DCMatcher", "DSAMatcher", "DMMatcher",
    "make_condenser", "CONDENSER_NAMES",
    "parameter_gradients", "input_gradient", "distance_and_grad_wrt_gsyn",
    "finite_difference_matching_grad",
]
