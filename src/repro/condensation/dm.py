"""DM: dataset condensation with Distribution Matching (Zhao & Bilen [13]).

The fast baseline in Table II.  Instead of matching gradients, DM matches
the *mean embedding* of the synthetic and real samples of each class under
randomly initialized encoders:

    L = sum_c || mean f(X'_c) - mean f(X_c) ||^2

This needs no bilevel loop and no second-order term — the loss is
first-order in the synthetic pixels — which is why DM is the fastest
method (and, per the paper, the least accurate at larger IpC).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..buffer.buffer import SyntheticBuffer
from ..nn.layers import Module
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from .base import CondensationMethod, CondensationStats, ModelFactory

__all__ = ["DMMatcher"]


class DMMatcher(CondensationMethod):
    """Distribution (mean-embedding) matching condensation.

    Parameters
    ----------
    iterations:
        Number of update iterations, each with a fresh random encoder.
    syn_lr / syn_momentum:
        Synthetic-pixel optimizer settings.
    batch_size:
        Max real samples per class per iteration.
    """

    name = "dm"

    def __init__(self, *, iterations: int = 10, syn_lr: float = 1.0,
                 syn_momentum: float = 0.5, batch_size: int = 128) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = int(iterations)
        self.syn_lr = float(syn_lr)
        self.syn_momentum = float(syn_momentum)
        self.batch_size = int(batch_size)

    def condense(self, buffer: SyntheticBuffer, active_classes: Sequence[int],
                 real_x: np.ndarray, real_y: np.ndarray,
                 real_w: np.ndarray | None, *,
                 model_factory: ModelFactory,
                 rng: np.random.Generator,
                 deployed_model: Module | None = None) -> CondensationStats:
        active = [int(c) for c in active_classes if np.any(real_y == c)]
        if not active or len(real_x) == 0:
            return CondensationStats()

        active_rows = buffer.indices_for_classes(active)
        syn_labels = buffer.labels[active_rows]
        syn_pixels = Tensor(buffer.images[active_rows].copy(), requires_grad=True)
        optimizer = SGD([syn_pixels], self.syn_lr, momentum=self.syn_momentum)
        row_of = {c: np.flatnonzero(syn_labels == c) for c in active}

        stats = CondensationStats()
        for _ in range(self.iterations):
            model: Module = model_factory(rng)
            # Real class means need no graph.
            real_means: dict[int, np.ndarray] = {}
            with no_grad():
                for cls in active:
                    members = np.flatnonzero(real_y == cls)
                    if members.size > self.batch_size:
                        members = rng.choice(members, size=self.batch_size,
                                             replace=False)
                    feats = model.features(Tensor(real_x[members]))
                    real_means[cls] = feats.data.mean(axis=0)
            stats.forward_backward_passes += 1

            pixels = Tensor(syn_pixels.data, requires_grad=True)
            feats = model.features(pixels)
            loss = None
            for cls in active:
                rows = row_of[cls]
                syn_mean = feats[rows].mean(axis=0)
                diff = syn_mean - Tensor(real_means[cls])
                term = (diff * diff).sum()
                loss = term if loss is None else loss + term
            loss.backward()
            stats.forward_backward_passes += 1

            syn_pixels.grad = pixels.grad
            optimizer.step()
            optimizer.zero_grad()
            stats.iterations += 1
            stats.matching_loss += loss.item()

        stats.matching_loss /= max(stats.iterations, 1)
        buffer.images[active_rows] = syn_pixels.data
        return stats
