"""Common interface for dataset condensation methods.

Table II of the paper compares DECO's one-step matcher against DC [12],
DSA [27], and DM [13] *inside the same on-device pipeline*: each method is
called once per stream segment to fold the segment's (pseudo-labeled) real
samples into the synthetic buffer.  This module defines that shared call
signature.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..buffer.buffer import SyntheticBuffer
from ..nn.layers import Module

__all__ = ["CondensationMethod", "CondensationStats", "ModelFactory"]

# Called with an RNG; returns a freshly (re-)randomized model.
ModelFactory = Callable[[np.random.Generator], Module]


@dataclass
class CondensationStats:
    """Diagnostics from one condensation call.

    Attributes
    ----------
    iterations:
        Number of synthetic-update iterations performed.
    matching_loss:
        Mean value of the distance ``D`` (or feature-matching loss for DM)
        over the iterations.
    forward_backward_passes:
        Total count of forward-backward passes, the paper's cost model for
        Table II.
    extra:
        Method-specific diagnostics.
    """

    iterations: int = 0
    matching_loss: float = 0.0
    forward_backward_passes: int = 0
    extra: dict = field(default_factory=dict)


class CondensationMethod(abc.ABC):
    """A strategy for updating synthetic buffer images from real samples."""

    name: str = "base"

    @abc.abstractmethod
    def condense(self, buffer: SyntheticBuffer, active_classes: Sequence[int],
                 real_x: np.ndarray, real_y: np.ndarray,
                 real_w: np.ndarray | None, *,
                 model_factory: ModelFactory,
                 rng: np.random.Generator,
                 deployed_model: Module | None = None) -> CondensationStats:
        """Update ``buffer`` rows of ``active_classes`` to absorb the reals.

        Parameters
        ----------
        buffer:
            The synthetic buffer ``S``; only rows belonging to
            ``active_classes`` may be modified (Eq. 3).
        active_classes:
            Classes considered active in the current segment.
        real_x, real_y, real_w:
            The segment's retained samples, their pseudo-labels, and the
            per-sample confidence weights ``w_i`` of Eq. (4) (``None`` means
            weight 1).
        model_factory:
            Produces a freshly randomized network each time it is called
            (the "randomize initial model parameters" step of Algorithm 1).
        rng:
            Randomness source for this call.
        deployed_model:
            The currently deployed model ``theta``.  DECO uses its encoder
            for the feature-discrimination loss (Eq. 8); the baseline
            methods ignore it.
        """
