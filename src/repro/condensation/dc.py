"""DC: vanilla bilevel gradient matching (Zhao et al. [12]).

The Table II baseline.  Unlike DECO's one-step scheme, DC follows the
training *trajectory*: in each outer loop a model is initialized and then
alternately (a) the synthetic images are updated to match per-class
gradients and (b) the model itself is trained on the synthetic set for a
few steps, over ``inner_epochs`` epochs.  This is the bilevel structure of
Eq. (1) and is what makes DC roughly an order of magnitude slower than
DECO on-device.

The gradient of the matching distance w.r.t. the synthetic pixels reuses
the same finite-difference machinery as DECO (our whole-framework
substitution for PyTorch's second-order autograd; see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..buffer.buffer import SyntheticBuffer
from ..nn.layers import Module
from ..nn.losses import cross_entropy
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from .base import CondensationMethod, CondensationStats, ModelFactory
from .matching import (distance_and_grad_wrt_gsyn,
                       finite_difference_matching_grad, parameter_gradients)

__all__ = ["DCMatcher"]


class DCMatcher(CondensationMethod):
    """Bilevel gradient matching condensation.

    Parameters
    ----------
    outer_loops:
        Number of model re-initializations (outer optimization restarts).
    inner_epochs:
        ``T`` — trajectory epochs followed per outer loop.
    net_steps:
        Model SGD steps on the synthetic set after each epoch's matching.
    syn_lr / syn_momentum:
        Synthetic-pixel optimizer settings.
    model_lr:
        Learning rate for the inner model updates.
    batch_size:
        Max real samples per class used in one matching step.
    metric:
        Gradient distance metric.
    """

    name = "dc"

    def __init__(self, *, outer_loops: int = 2, inner_epochs: int = 10,
                 net_steps: int = 10, syn_lr: float = 0.1,
                 syn_momentum: float = 0.5, model_lr: float = 0.01,
                 batch_size: int = 128, metric: str = "cosine") -> None:
        self.outer_loops = int(outer_loops)
        self.inner_epochs = int(inner_epochs)
        self.net_steps = int(net_steps)
        self.syn_lr = float(syn_lr)
        self.syn_momentum = float(syn_momentum)
        self.model_lr = float(model_lr)
        self.batch_size = int(batch_size)
        self.metric = metric

    def _sample_augmentation(self, image_size: int, rng: np.random.Generator):
        """Hook for DSA; plain DC applies no augmentation."""
        return None

    def _class_batch(self, real_x, real_y, real_w, cls: int,
                     rng: np.random.Generator):
        members = np.flatnonzero(real_y == cls)
        if members.size > self.batch_size:
            members = rng.choice(members, size=self.batch_size, replace=False)
        w = None if real_w is None else real_w[members]
        return real_x[members], real_y[members], w

    def _train_model_on_syn(self, model: Module, syn_x: np.ndarray,
                            syn_y: np.ndarray,
                            optimizer: SGD) -> int:
        passes = 0
        for _ in range(self.net_steps):
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(syn_x)), syn_y)
            loss.backward()
            optimizer.step()
            passes += 1
        return passes

    def condense(self, buffer: SyntheticBuffer, active_classes: Sequence[int],
                 real_x: np.ndarray, real_y: np.ndarray,
                 real_w: np.ndarray | None, *,
                 model_factory: ModelFactory,
                 rng: np.random.Generator,
                 deployed_model: Module | None = None) -> CondensationStats:
        active = [int(c) for c in active_classes
                  if np.any(real_y == c)]
        if not active or len(real_x) == 0:
            return CondensationStats()

        active_rows = buffer.indices_for_classes(active)
        syn_labels = buffer.labels[active_rows]
        syn_pixels = Tensor(buffer.images[active_rows].copy(), requires_grad=True)
        syn_optimizer = SGD([syn_pixels], self.syn_lr, momentum=self.syn_momentum)
        row_of = {c: np.flatnonzero(syn_labels == c) for c in active}

        stats = CondensationStats()
        image_size = buffer.image_shape[-1]
        for _ in range(self.outer_loops):
            model = model_factory(rng)
            model_optimizer = SGD(model.parameters(), self.model_lr, momentum=0.5)
            for _ in range(self.inner_epochs):
                grad = np.zeros_like(syn_pixels.data)
                for cls in active:
                    augmentation = self._sample_augmentation(image_size, rng)
                    bx, by, bw = self._class_batch(real_x, real_y, real_w, cls, rng)
                    g_real, _ = parameter_gradients(model, bx, by, bw,
                                                    augmentation=augmentation)
                    rows = row_of[cls]
                    g_syn, _ = parameter_gradients(
                        model, syn_pixels.data[rows], syn_labels[rows],
                        augmentation=augmentation)
                    distance, direction = distance_and_grad_wrt_gsyn(
                        g_syn, g_real, metric=self.metric)
                    fd_stats: dict = {}
                    grad[rows] = finite_difference_matching_grad(
                        model, syn_pixels.data[rows], syn_labels[rows], direction,
                        augmentation=augmentation, stats_out=fd_stats)
                    stats.matching_loss += distance
                    stats.iterations += 1
                    # g_real, g_syn, grad_{g_syn}D, plus the FD evaluations
                    # that actually ran (2 sequential, 1 fused, 0 zero-norm).
                    stats.forward_backward_passes += 3 + fd_stats.get("passes", 2)
                    if fd_stats.get("fused"):
                        stats.extra["fused"] = stats.extra.get("fused", 0) + 1
                syn_pixels.grad = grad
                syn_optimizer.step()
                syn_optimizer.zero_grad()
                # Inner-level: advance the model along the synthetic trajectory.
                stats.forward_backward_passes += self._train_model_on_syn(
                    model, syn_pixels.data, syn_labels, model_optimizer)

        stats.matching_loss /= max(stats.iterations, 1)
        buffer.images[active_rows] = syn_pixels.data
        return stats
