"""DSA: gradient matching with Differentiable Siamese Augmentation [27].

Identical bilevel structure to :class:`~repro.condensation.dc.DCMatcher`,
but every matching step draws one augmentation (flip/shift/contrast/
brightness/cutout) and applies it to *both* the real batch and the
synthetic batch before the forward pass, backpropagating through it to the
synthetic pixels.  The "siamese" property — the same draw on both sides —
is what lets the synthetic images learn augmentation-invariant content.
"""

from __future__ import annotations

import numpy as np

from ..data.transforms import AugmentationParams, sample_augmentation
from .dc import DCMatcher

__all__ = ["DSAMatcher"]


class DSAMatcher(DCMatcher):
    """DC with differentiable siamese augmentation in every matching step."""

    name = "dsa"

    def __init__(self, *, augment_prob: float = 0.8, **dc_kwargs) -> None:
        super().__init__(**dc_kwargs)
        if not 0.0 <= augment_prob <= 1.0:
            raise ValueError("augment_prob must be in [0, 1]")
        self.augment_prob = float(augment_prob)

    def _sample_augmentation(self, image_size: int,
                             rng: np.random.Generator) -> AugmentationParams | None:
        if rng.random() >= self.augment_prob:
            return None
        return sample_augmentation(image_size, rng)
