"""DECO's efficient on-device condensation (§III-C and §III-D).

One-step gradient matching: instead of DC's bilevel loop over a training
trajectory, each iteration draws a *freshly randomized* model and matches
the first-epoch gradients of the synthetic and real batches (Eq. 5).  The
gradient of the distance with respect to the synthetic pixels is obtained
with the five-pass finite-difference scheme of Eq. (7), and the feature
discrimination loss of Eq. (8) — computed with the *deployed* model's
encoder — is added with weight ``alpha`` (Eq. 9).
"""

from __future__ import annotations

import contextlib
from typing import Sequence

import numpy as np

from .. import obs
from ..buffer.buffer import SyntheticBuffer
from ..nn import kernels
from ..nn.layers import Module, frozen_parameters
from ..nn.losses import feature_discrimination_loss
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..nn.workspace import default_step_cache
from ..obs.health import EwmaTripwire
from .base import CondensationMethod, CondensationStats, ModelFactory
from .matching import (distance_and_grad_wrt_gsyn,
                       finite_difference_matching_grad, gradient_cosine,
                       parameter_gradients)

__all__ = ["OneStepMatcher"]


class OneStepMatcher(CondensationMethod):
    """DECO condensation: one-step FD gradient matching + feature discrimination.

    Parameters
    ----------
    iterations:
        ``L`` — synthetic-update iterations per segment (paper: 10); each
        draws a new randomized model.
    alpha:
        Weight of the feature-discrimination loss (paper: 0.1; 0 disables).
    tau:
        Contrastive temperature (paper: 0.07).
    syn_lr / syn_momentum:
        Learning rate / momentum of the synthetic-pixel optimizer ``opt_S``.
    batch_size:
        Max real samples used per matching iteration (paper: 128).
    metric:
        Gradient distance ``D`` ("cosine" as in the paper, or "l2").
    epsilon_numerator:
        Numerator of the finite-difference step (footnote 2: 0.01).
    rerandomize:
        Draw a fresh random model every iteration (the paper's choice).
        ``False`` keeps a single random model for all ``L`` iterations —
        the "one model across multiple steps" ablation of §III-C.
    use_confidence:
        Weight real samples by pseudo-label confidence (Eq. 4).  ``False``
        gives every retained sample weight 1 (ablation).
    """

    name = "deco"

    def __init__(self, *, iterations: int = 10, alpha: float = 0.1,
                 tau: float = 0.07, syn_lr: float = 0.1,
                 syn_momentum: float = 0.5, batch_size: int = 128,
                 metric: str = "cosine",
                 epsilon_numerator: float = 0.01,
                 rerandomize: bool = True,
                 use_confidence: bool = True) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = int(iterations)
        self.alpha = float(alpha)
        self.tau = float(tau)
        self.syn_lr = float(syn_lr)
        self.syn_momentum = float(syn_momentum)
        self.batch_size = int(batch_size)
        self.metric = metric
        self.epsilon_numerator = float(epsilon_numerator)
        self.rerandomize = bool(rerandomize)
        self.use_confidence = bool(use_confidence)
        # Matching-loss divergence tripwire: per-instance state so sweep
        # tasks (one fresh matcher each) stay counter-parity-clean between
        # serial and forked-worker runs.
        self._loss_tripwire = EwmaTripwire()

    # -- helpers -----------------------------------------------------------
    def _real_batch(self, real_x: np.ndarray, real_y: np.ndarray,
                    real_w: np.ndarray | None, rng: np.random.Generator
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        if len(real_x) <= self.batch_size:
            return real_x, real_y, real_w
        idx = rng.choice(len(real_x), size=self.batch_size, replace=False)
        return (real_x[idx], real_y[idx],
                None if real_w is None else real_w[idx])

    def _discrimination_grad(self, buffer: SyntheticBuffer,
                             active_rows: np.ndarray, deployed_model: Module,
                             rng: np.random.Generator) -> tuple[np.ndarray, float]:
        """Gradient of Eq. (8) w.r.t. the active buffer pixels.

        Only the involved classes — the active samples' own classes plus the
        pre-sampled negative class of each — are encoded, keeping the cost
        independent of the total class count (crucial for the CIFAR-100
        buffer, where encoding all 100 class blocks per iteration would
        dominate the runtime).
        """
        zero = (np.zeros((len(active_rows), *buffer.image_shape),
                         dtype=np.float32), 0.0)
        if buffer.num_classes < 2:
            return zero
        active_labels = buffer.labels[active_rows]
        # One uniform draw over C-1 "other" classes per sample: values >= the
        # sample's own class shift up by one, which maps [0, C-1) onto
        # {0..C-1} \ {y_i} without the per-sample delete/choice allocations.
        draws = rng.integers(0, buffer.num_classes - 1,
                             size=len(active_labels))
        negatives = draws + (draws >= active_labels)
        involved = set(active_labels.tolist()) | set(negatives.tolist())
        rows = buffer.indices_for_classes(involved)
        # ``rows`` is sorted ascending (sorted class blocks of ascending
        # ranges) and contains every active row, so the active rows' local
        # positions come from one vectorized binary search.
        local_active = np.searchsorted(rows, active_rows)

        sub_tensor = Tensor(buffer.decoded_images(rows), requires_grad=True)
        deployed_model.zero_grad()
        # Only the gradient w.r.t. the buffer pixels is consumed, so the
        # deployed encoder's parameter gradients are pure waste — freeze
        # them for the duration of the pass under the fast kernels.
        freeze = (frozen_parameters(deployed_model)
                  if kernels.fast_kernels_enabled() else contextlib.nullcontext())
        with freeze:
            feats = deployed_model.features(sub_tensor)
            loss = feature_discrimination_loss(
                feats, buffer.labels[rows], local_active, rng,
                temperature=self.tau, negative_classes=negatives)
            if not loss.requires_grad:  # no usable positive/negative pairs
                return zero
            loss.backward()
        deployed_model.zero_grad()
        grad = (np.zeros_like(sub_tensor.data) if sub_tensor.grad is None
                else sub_tensor.grad)
        return grad[local_active], loss.item()

    # -- main entry ---------------------------------------------------------
    def condense(self, buffer: SyntheticBuffer, active_classes: Sequence[int],
                 real_x: np.ndarray, real_y: np.ndarray,
                 real_w: np.ndarray | None, *,
                 model_factory: ModelFactory,
                 rng: np.random.Generator,
                 deployed_model: Module | None = None) -> CondensationStats:
        active_rows = buffer.indices_for_classes(active_classes)
        if active_rows.size == 0 or len(real_x) == 0:
            return CondensationStats()
        if not self.use_confidence:
            real_w = None

        syn_labels = buffer.labels[active_rows]
        # The optimization variable is the *stored* payload; the matching
        # passes below consume its decoded (full-resolution) view.  For the
        # base buffer decode is the identity, so syn_x IS syn_store.data and
        # every cache-scope / note_write keyed on it behaves exactly as
        # before; a factorized buffer interposes its upsample here and gets
        # the transposed gradient back through encode_grad.
        syn_store = Tensor(buffer.images[active_rows].copy(), requires_grad=True)
        optimizer = SGD([syn_store], self.syn_lr, momentum=self.syn_momentum)

        stats = CondensationStats()
        use_disc = self.alpha != 0.0 and deployed_model is not None
        model = model_factory(rng)
        matching_passes = 0
        fused_evals = 0
        # One StepCache scope per iteration: pass.g_syn and the FD passes
        # all read the same decoded block, so its first-layer im2col is
        # derived once and shared.  The scope is keyed by array identity;
        # syn_x is rebuilt from the freshly stepped storage each iteration,
        # so the scope (and an explicit note_write) end before the optimizer
        # runs.
        caching = (kernels.fast_kernels_enabled() and kernels.fd_fuse_enabled())
        # Segment-level scope on the real batch: when the whole real set fits
        # in one batch, _real_batch returns real_x itself every iteration, so
        # its first-layer columns are content-stable across the segment and
        # pass.g_real reuses one im2col.  Subsampled batches are fresh arrays
        # each iteration and simply never hit.
        segment_scope = (default_step_cache.scope(real_x)
                         if caching and len(real_x) <= self.batch_size
                         else contextlib.nullcontext())
        monitor = obs.get_monitor()
        skipped_steps = 0
        with segment_scope:
            for it in range(self.iterations):
                if self.rerandomize:
                    model = model_factory(rng)
                batch_x, batch_y, batch_w = self._real_batch(
                    real_x, real_y, real_w, rng)

                syn_x = buffer.decode(syn_store.data)
                step_scope = (default_step_cache.scope(syn_x)
                              if caching else contextlib.nullcontext())
                with step_scope:
                    with obs.span("pass.g_real"):
                        g_real, _ = parameter_gradients(
                            model, batch_x, batch_y, batch_w)
                    with obs.span("pass.g_syn"):
                        g_syn, _ = parameter_gradients(
                            model, syn_x, syn_labels)
                    if it == self.iterations - 1:
                        # Quality scalar: how well the synthetic gradients
                        # track the real ones — both stacks are already in
                        # hand, so this is a few dot products per segment.
                        stats.extra["grad_cosine"] = gradient_cosine(
                            g_syn, g_real)
                    # Health sentinels at the gradient hand-offs.  Under
                    # the default ``record`` policy these only observe; a
                    # ``False`` return (skip-step policy) drops the
                    # iteration before the poisoned bytes can reach the
                    # synthetic payload.
                    if not (monitor.check("matcher.g_real", g_real,
                                          iteration=it)
                            and monitor.check("matcher.g_syn", g_syn,
                                              iteration=it)):
                        skipped_steps += 1
                        continue
                    with obs.span("pass.grad_distance"):
                        distance, direction = distance_and_grad_wrt_gsyn(
                            g_syn, g_real, metric=self.metric)
                    if not monitor.check_loss("matcher.matching_loss",
                                              distance, self._loss_tripwire,
                                              iteration=it):
                        skipped_steps += 1
                        continue
                    fd_stats: dict = {}
                    matching_grad = finite_difference_matching_grad(
                        model, syn_x, syn_labels, direction,
                        epsilon_numerator=self.epsilon_numerator,
                        stats_out=fd_stats)
                    total_grad = matching_grad
                    # passes: g_real, g_syn, grad_{g_syn}D, plus however many
                    # FD evaluations actually ran (2 sequential, 1 fused, 0
                    # when the direction norm was zero).
                    fd_passes = fd_stats.get("passes", 2)
                    fused_evals += bool(fd_stats.get("fused"))
                    stats.forward_backward_passes += 3 + fd_passes
                    matching_passes += 3 + fd_passes

                    if use_disc:
                        # Keep the deployed model's view of the buffer
                        # current: the non-active rows come from the buffer,
                        # the active rows from the payload being optimized.
                        buffer.images[active_rows] = syn_store.data
                        with obs.span("pass.discrimination"):
                            disc_grad, disc_loss = self._discrimination_grad(
                                buffer, active_rows, deployed_model, rng)
                        total_grad = total_grad + self.alpha * disc_grad
                        stats.forward_backward_passes += 1
                        stats.extra["discrimination_loss"] = disc_loss

                    default_step_cache.note_write(syn_x)
                # total_grad lives in decoded space; pull it back onto the
                # storage through the decode transpose before stepping.
                syn_store.grad = np.asarray(buffer.encode_grad(total_grad),
                                            dtype=np.float32)
                if not monitor.check("matcher.syn_grad", syn_store.grad,
                                     iteration=it):
                    skipped_steps += 1
                    optimizer.zero_grad()
                    continue
                optimizer.step()
                optimizer.zero_grad()

                stats.iterations += 1
                stats.matching_loss += distance

        stats.matching_loss /= max(stats.iterations, 1)
        stats.extra["matching_passes"] = matching_passes
        stats.extra["fused"] = fused_evals
        if skipped_steps:
            stats.extra["health_skipped"] = skipped_steps
        buffer.images[active_rows] = syn_store.data
        return stats
