"""Data substrate: synthetic datasets, non-i.i.d. streams, augmentations."""

from .datasets import DatasetSpec, SyntheticImageDataset, make_dataset
from .registry import (PRETRAIN_FRACTION, PROFILES, available_datasets,
                       clear_dataset_cache, dataset_spec, load_dataset)
from .stream import (Stream, StreamSegment, make_stream, make_stream_order,
                     measure_stc)
from .transforms import (AugmentationParams, apply_augmentation,
                         sample_augmentation)

__all__ = [
    "DatasetSpec", "SyntheticImageDataset", "make_dataset",
    "available_datasets", "dataset_spec", "load_dataset", "clear_dataset_cache",
    "PROFILES", "PRETRAIN_FRACTION",
    "Stream", "StreamSegment", "make_stream", "make_stream_order", "measure_stc",
    "AugmentationParams", "sample_augmentation", "apply_augmentation",
]
