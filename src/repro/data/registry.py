"""Registry of the paper's datasets as synthetic analogues.

Provides named specs for the four evaluation datasets (iCub World 1.0,
CORe50, CIFAR-100, ImageNet-10) plus the CIFAR-10 analogue used by Fig. 2,
at three scale profiles:

* ``"micro"`` — tiny (8 px, a handful of samples), for fast unit tests;
* ``"smoke"`` — small images / few samples, for quick benchmark runs;
* ``"paper"`` — the paper's relative proportions (full class counts, more
  samples, larger images) at a CPU-feasible absolute scale.

The class counts, session counts, and relative resolutions mirror the paper:
CORe50 has 11 sessions; CIFAR-100 keeps 100 classes; ImageNet-10 is the
high-resolution dataset.
"""

from __future__ import annotations

from .datasets import DatasetSpec, SyntheticImageDataset, make_dataset

__all__ = ["PROFILES", "available_datasets", "dataset_spec", "load_dataset",
           "clear_dataset_cache"]

PROFILES = ("micro", "smoke", "paper")

# name -> profile -> spec keyword overrides
_SPECS: dict[str, dict[str, DatasetSpec]] = {
    "icub1": {
        "micro": DatasetSpec(
            name="icub1", num_classes=4, image_size=8, train_per_class=16,
            test_per_class=8, num_groups=2, num_sessions=2,
            class_separation=0.6, session_strength=0.3, noise_std=0.6,
            jitter=1, smoothness=1.0),
        "smoke": DatasetSpec(
            name="icub1", num_classes=10, image_size=16, train_per_class=60,
            test_per_class=20, num_groups=3, num_sessions=2,
            class_separation=0.55, session_strength=0.3, noise_std=0.8),
        "paper": DatasetSpec(
            name="icub1", num_classes=10, image_size=32, train_per_class=240,
            test_per_class=60, num_groups=3, num_sessions=4,
            class_separation=0.55, session_strength=0.3, noise_std=0.8),
    },
    "core50": {
        "micro": DatasetSpec(
            name="core50", num_classes=4, image_size=8, train_per_class=16,
            test_per_class=8, num_groups=2, num_sessions=2,
            class_separation=0.65, session_strength=0.3, noise_std=0.6,
            jitter=1, smoothness=1.0),
        "smoke": DatasetSpec(
            name="core50", num_classes=10, image_size=16, train_per_class=60,
            test_per_class=22, num_groups=3, num_sessions=3,
            class_separation=0.6, session_strength=0.35, noise_std=0.75),
        "paper": DatasetSpec(
            name="core50", num_classes=10, image_size=32, train_per_class=264,
            test_per_class=66, num_groups=3, num_sessions=11,
            class_separation=0.6, session_strength=0.35, noise_std=0.75),
    },
    "cifar100": {
        "micro": DatasetSpec(
            name="cifar100", num_classes=8, image_size=8, train_per_class=12,
            test_per_class=6, num_groups=4, num_sessions=1,
            class_separation=0.55, session_strength=0.0, noise_std=0.65,
            jitter=1, smoothness=1.0),
        # Smoke keeps the many-class character (4x the classes of the other
        # datasets) at a CPU-friendly 40 classes; "paper" restores all 100.
        "smoke": DatasetSpec(
            name="cifar100", num_classes=40, image_size=16, train_per_class=15,
            test_per_class=6, num_groups=8, num_sessions=1,
            class_separation=0.5, session_strength=0.0, noise_std=0.85),
        "paper": DatasetSpec(
            name="cifar100", num_classes=100, image_size=16, train_per_class=80,
            test_per_class=20, num_groups=20, num_sessions=1,
            class_separation=0.5, session_strength=0.0, noise_std=0.85),
    },
    "imagenet10": {
        "micro": DatasetSpec(
            name="imagenet10", num_classes=4, image_size=12, train_per_class=16,
            test_per_class=8, num_groups=2, num_sessions=1,
            class_separation=0.5, session_strength=0.0, noise_std=0.7,
            jitter=1, smoothness=1.5),
        "smoke": DatasetSpec(
            name="imagenet10", num_classes=10, image_size=32, train_per_class=30,
            test_per_class=12, num_groups=3, num_sessions=1,
            class_separation=0.45, session_strength=0.0, noise_std=0.95,
            jitter=3, smoothness=2.5),
        "paper": DatasetSpec(
            name="imagenet10", num_classes=10, image_size=48, train_per_class=120,
            test_per_class=40, num_groups=3, num_sessions=1,
            class_separation=0.45, session_strength=0.0, noise_std=0.95,
            jitter=4, smoothness=3.0),
    },
    "cifar10": {
        "micro": DatasetSpec(
            name="cifar10", num_classes=6, image_size=8, train_per_class=16,
            test_per_class=8, num_groups=2, num_sessions=1,
            class_separation=0.55, session_strength=0.0, noise_std=0.65,
            jitter=1, smoothness=1.0),
        "smoke": DatasetSpec(
            name="cifar10", num_classes=10, image_size=16, train_per_class=60,
            test_per_class=20, num_groups=3, num_sessions=1,
            class_separation=0.5, session_strength=0.0, noise_std=0.85),
        "paper": DatasetSpec(
            name="cifar10", num_classes=10, image_size=32, train_per_class=240,
            test_per_class=60, num_groups=3, num_sessions=1,
            class_separation=0.5, session_strength=0.0, noise_std=0.85),
    },
}

# The paper pre-trains with 1% labels (10% for CIFAR-100).  Our per-class
# pools are smaller, so fractions are scaled to keep the *pretrain sample
# counts per class* comparable in spirit (a handful per class).
PRETRAIN_FRACTION = {
    "icub1": 0.05, "core50": 0.05, "cifar100": 0.10, "imagenet10": 0.05,
    "cifar10": 0.05,
}

_CACHE: dict[tuple[str, str, int], SyntheticImageDataset] = {}


def available_datasets() -> list[str]:
    """Names of all registered datasets."""
    return sorted(_SPECS)


def dataset_spec(name: str, profile: str = "smoke") -> DatasetSpec:
    """Look up the spec for a registered dataset at a scale profile."""
    if name not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r}; available: {PROFILES}")
    return _SPECS[name][profile]


def load_dataset(name: str, profile: str = "smoke",
                 seed: int = 0) -> SyntheticImageDataset:
    """Generate (or fetch from cache) a registered dataset.

    Generation is deterministic in (name, profile, seed); results are cached
    per process because experiments reuse the same dataset many times.
    """
    key = (name, profile, int(seed))
    if key not in _CACHE:
        _CACHE[key] = make_dataset(dataset_spec(name, profile), seed=seed)
    return _CACHE[key]


def clear_dataset_cache() -> None:
    """Drop all cached datasets (mainly for tests)."""
    _CACHE.clear()
