"""Non-i.i.d. data stream construction.

On-device learning consumes a temporally correlated, unlabeled, seen-once
stream.  This module turns a dataset's training pool into such a stream:

* :func:`make_stream_order` orders sample indices either by *recording
  sessions* (iCub1/CORe50-style: within each environment, each object is
  filmed as a consecutive run) or by the *Strength of Temporal Correlation*
  (STC) metric of Hayes et al. [22] used by the paper for CIFAR-100
  (STC=500) and ImageNet-10 (STC=100): runs of ``stc`` consecutive
  same-class samples.
* :class:`Stream` wraps the ordered samples and yields fixed-size
  :class:`StreamSegment` batches; true labels ride along *hidden* — learners
  must not read them (they exist for pseudo-label diagnostics and oracle
  baselines only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..utils.rng import to_rng
from .datasets import SyntheticImageDataset

__all__ = ["StreamSegment", "Stream", "make_stream_order", "make_stream",
           "measure_stc"]


@dataclass(frozen=True)
class StreamSegment:
    """One segment ``I_t`` of the input stream.

    Attributes
    ----------
    images:
        (B, C, H, W) unlabeled samples as the device sees them.
    hidden_labels:
        (B,) ground-truth labels.  **Diagnostics only** — the on-device
        algorithms never read these.
    index:
        Zero-based segment number ``t``.
    start:
        Offset of the first sample within the whole stream.
    """

    images: np.ndarray
    hidden_labels: np.ndarray
    index: int
    start: int

    def __len__(self) -> int:
        return len(self.hidden_labels)


def make_stream_order(dataset: SyntheticImageDataset, *,
                      stc: int | None = None,
                      session_ordered: bool = False,
                      rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Return a permutation of train indices forming a non-i.i.d. stream.

    Exactly one of ``stc`` / ``session_ordered`` should be set; with neither,
    the stream is i.i.d.-shuffled (useful as a control).
    """
    rng = to_rng(rng)
    if session_ordered and stc is not None:
        raise ValueError("choose either session_ordered or stc, not both")

    if session_ordered:
        order: list[np.ndarray] = []
        for session in np.unique(dataset.train_sessions):
            in_session = np.flatnonzero(dataset.train_sessions == session)
            classes = np.unique(dataset.y_train[in_session])
            rng.shuffle(classes)
            for cls in classes:
                members = in_session[dataset.y_train[in_session] == cls]
                members = rng.permutation(members)
                order.append(members)
        return np.concatenate(order)

    if stc is not None:
        if stc < 1:
            raise ValueError("stc must be >= 1")
        pools = {c: list(rng.permutation(np.flatnonzero(dataset.y_train == c)))
                 for c in range(dataset.num_classes)}
        order_list: list[int] = []
        previous = -1
        while any(pools.values()):
            candidates = [c for c, pool in pools.items() if pool and c != previous]
            if not candidates:  # only the previous class has samples left
                candidates = [c for c, pool in pools.items() if pool]
            cls = int(rng.choice(candidates))
            run = min(stc, len(pools[cls]))
            order_list.extend(pools[cls][:run])
            del pools[cls][:run]
            previous = cls
        return np.asarray(order_list, dtype=np.int64)

    return rng.permutation(dataset.num_train)


def measure_stc(labels: np.ndarray) -> float:
    """Average run length of consecutive same-class samples in a stream."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("empty stream")
    changes = int(np.count_nonzero(labels[1:] != labels[:-1]))
    return labels.size / (changes + 1)


class Stream:
    """An ordered, segment-iterable view over a dataset's training pool."""

    def __init__(self, dataset: SyntheticImageDataset, order: np.ndarray,
                 segment_size: int) -> None:
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        order = np.asarray(order, dtype=np.int64)
        if order.size == 0:
            raise ValueError("empty stream order")
        self.dataset = dataset
        self.order = order
        self.segment_size = int(segment_size)

    def __len__(self) -> int:
        """Number of segments (the last partial segment counts)."""
        return (len(self.order) + self.segment_size - 1) // self.segment_size

    @property
    def num_samples(self) -> int:
        return len(self.order)

    def segments(self) -> Iterator[StreamSegment]:
        """Yield the stream segment by segment, each sample exactly once."""
        for t, start in enumerate(range(0, len(self.order), self.segment_size)):
            idx = self.order[start:start + self.segment_size]
            yield StreamSegment(
                images=self.dataset.x_train[idx],
                hidden_labels=self.dataset.y_train[idx],
                index=t,
                start=start,
            )

    def __iter__(self) -> Iterator[StreamSegment]:
        return self.segments()


def make_stream(dataset: SyntheticImageDataset, *, segment_size: int,
                stc: int | None = None, session_ordered: bool = False,
                rng: int | np.random.Generator | None = None) -> Stream:
    """Build a :class:`Stream` in one call (order + segmentation)."""
    order = make_stream_order(dataset, stc=stc, session_ordered=session_ordered,
                              rng=rng)
    return Stream(dataset, order, segment_size)
