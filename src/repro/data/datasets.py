"""Synthetic image-classification dataset generators.

The paper evaluates on iCub World 1.0, CORe50, CIFAR-100, and ImageNet-10.
None of those are downloadable in this offline environment, so this module
builds parameterized synthetic analogues that preserve the statistical
properties the algorithms actually interact with:

* **class structure** — each class has a smooth prototype image; samples are
  noisy, jittered (shifted/flipped) views of it, so a ConvNet can learn the
  task but single raw samples are weak class summaries (the premise of
  condensation);
* **confusable classes** — classes are organized into groups sharing a
  common anchor pattern (e.g. cat/dog/deer-like visual similarity), which is
  what makes pseudo-label errors land on *similar* classes (Fig. 2) and
  motivates the feature-discrimination loss;
* **sessions/environments** — CORe50-style datasets add per-session
  background fields, so the stream distribution shifts over time;
* **pose variation** — per-sample integer translations and horizontal flips
  emulate multi-view object recordings.

All arrays are float32 NCHW, roughly zero-mean/unit-std.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from ..utils.rng import to_rng

__all__ = ["DatasetSpec", "SyntheticImageDataset", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters controlling synthetic dataset generation.

    Attributes
    ----------
    name:
        Identifier (used by the registry and experiment reports).
    num_classes:
        Number of object classes.
    image_size:
        Square spatial resolution; must suit the ConvNet depth used.
    channels:
        Image channels (3 for all paper datasets).
    train_per_class / test_per_class:
        Samples generated per class for the stream pool and the test set.
    num_groups:
        Number of confusable-class groups (anchors); classes are assigned
        round-robin.  More groups -> easier discrimination.
    num_sessions:
        Distinct recording environments (CORe50 has 11); 1 disables
        session shift.
    class_separation:
        Scale of the class-specific detail field relative to the shared
        group anchor.  Smaller values make within-group classes harder to
        tell apart.
    session_strength:
        Scale of the per-session background field.
    noise_std:
        Per-pixel white-noise standard deviation.
    jitter:
        Maximum absolute integer translation applied per sample.
    flip:
        Whether samples are randomly mirrored.
    smoothness:
        Gaussian-blur sigma used when drawing prototype/anchor fields.
    """

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    train_per_class: int = 100
    test_per_class: int = 30
    num_groups: int = 3
    num_sessions: int = 1
    class_separation: float = 0.55
    session_strength: float = 0.35
    noise_std: float = 0.8
    jitter: int = 2
    flip: bool = True
    smoothness: float = 1.5

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.num_groups < 1 or self.num_groups > self.num_classes:
            raise ValueError("num_groups must be in [1, num_classes]")
        if self.image_size < 4:
            raise ValueError("image_size too small")
        if self.num_sessions < 1:
            raise ValueError("num_sessions must be >= 1")


@dataclass
class SyntheticImageDataset:
    """A generated dataset with train/test splits and stream metadata.

    ``train_sessions`` records which session each training sample was
    "recorded" in; stream builders use it to produce session-ordered
    non-i.i.d. streams.  ``group_of`` maps class -> confusable group id.
    """

    spec: DatasetSpec
    x_train: np.ndarray
    y_train: np.ndarray
    train_sessions: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    group_of: np.ndarray
    prototypes: np.ndarray = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def image_size(self) -> int:
        return self.spec.image_size

    @property
    def channels(self) -> int:
        return self.spec.channels

    @property
    def num_train(self) -> int:
        return len(self.y_train)

    def image_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.image_size, self.image_size)

    def pretrain_subset(self, fraction: float,
                        rng: int | np.random.Generator | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Class-balanced labeled subset used to pre-train before deployment.

        The paper pre-trains on 1% of labels (10% for CIFAR-100); at least
        one sample per class is always included.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = to_rng(rng)
        per_class = max(1, int(round(fraction * self.spec.train_per_class)))
        xs, ys = [], []
        for c in range(self.num_classes):
            idx = np.flatnonzero(self.y_train == c)
            chosen = rng.choice(idx, size=min(per_class, idx.size), replace=False)
            xs.append(self.x_train[chosen])
            ys.append(self.y_train[chosen])
        return np.concatenate(xs), np.concatenate(ys)

    def confusable_classes(self, c: int) -> np.ndarray:
        """Classes sharing class ``c``'s anchor group (excluding ``c``)."""
        same = np.flatnonzero(self.group_of == self.group_of[c])
        return same[same != c]


def _smooth_field(rng: np.random.Generator, channels: int, size: int,
                  sigma: float) -> np.ndarray:
    """Draw a smooth zero-mean unit-std random field of shape (C, H, W)."""
    field_ = rng.standard_normal((channels, size, size))
    if sigma > 0:
        field_ = np.stack([ndimage.gaussian_filter(f, sigma) for f in field_])
    std = field_.std()
    if std > 0:
        field_ = field_ / std
    return field_.astype(np.float32)


def _jitter_and_flip(image: np.ndarray, rng: np.random.Generator,
                     jitter: int, flip: bool) -> np.ndarray:
    """Apply a random integer translation (wrap-around) and mirror."""
    out = image
    if jitter > 0:
        dx, dy = rng.integers(-jitter, jitter + 1, size=2)
        out = np.roll(out, (int(dx), int(dy)), axis=(1, 2))
    if flip and rng.random() < 0.5:
        out = out[:, :, ::-1]
    return out


def make_dataset(spec: DatasetSpec,
                 seed: int | np.random.Generator | None = 0) -> SyntheticImageDataset:
    """Generate a :class:`SyntheticImageDataset` from ``spec``.

    Deterministic given the seed: the same spec+seed always produces
    identical arrays.
    """
    rng = to_rng(seed)
    c, s = spec.channels, spec.image_size

    group_of = np.arange(spec.num_classes) % spec.num_groups
    anchors = np.stack([_smooth_field(rng, c, s, spec.smoothness)
                        for _ in range(spec.num_groups)])
    details = np.stack([_smooth_field(rng, c, s, spec.smoothness)
                        for _ in range(spec.num_classes)])
    prototypes = anchors[group_of] + spec.class_separation * details
    sessions = np.stack([_smooth_field(rng, c, s, spec.smoothness * 2)
                         for _ in range(spec.num_sessions)])

    def synthesize(per_class: int, assign_sessions: bool
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        total = spec.num_classes * per_class
        xs = np.empty((total, c, s, s), dtype=np.float32)
        ys = np.empty(total, dtype=np.int64)
        sess = np.empty(total, dtype=np.int64)
        i = 0
        for cls in range(spec.num_classes):
            for k in range(per_class):
                session_id = (k * spec.num_sessions // per_class
                              if assign_sessions else int(rng.integers(spec.num_sessions)))
                base = _jitter_and_flip(prototypes[cls], rng, spec.jitter, spec.flip)
                noise = rng.standard_normal((c, s, s)).astype(np.float32) * spec.noise_std
                xs[i] = base + spec.session_strength * sessions[session_id] + noise
                ys[i] = cls
                sess[i] = session_id
                i += 1
        return xs, ys, sess

    x_train, y_train, train_sessions = synthesize(spec.train_per_class, assign_sessions=True)
    x_test, y_test, _ = synthesize(spec.test_per_class, assign_sessions=False)

    # Standardize with train statistics (as image pipelines do).
    mean = x_train.mean()
    std = x_train.std() + 1e-8
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std

    return SyntheticImageDataset(
        spec=spec,
        x_train=x_train, y_train=y_train, train_sessions=train_sessions,
        x_test=x_test, y_test=y_test,
        group_of=group_of, prototypes=prototypes,
    )
