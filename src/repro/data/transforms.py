"""Differentiable image augmentations (for the DSA baseline).

Dataset Condensation with Differentiable Siamese Augmentation (DSA, [27])
applies the *same randomly drawn* augmentation to the real batch and the
synthetic batch inside each matching step, and backpropagates through it to
the synthetic pixels.  :class:`AugmentationParams` captures one draw;
:func:`apply_augmentation` applies it to any batch, built entirely from
engine ops so gradients flow to the input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.tensor import Tensor
from ..utils.rng import to_rng

__all__ = ["AugmentationParams", "sample_augmentation", "apply_augmentation",
           "flip_horizontal", "translate", "adjust_brightness",
           "adjust_contrast", "scale_intensity", "cutout"]


def flip_horizontal(x: Tensor) -> Tensor:
    """Mirror an NCHW batch along the width axis (differentiable)."""
    return x[:, :, :, ::-1]


def translate(x: Tensor, dx: int, dy: int) -> Tensor:
    """Shift an NCHW batch by (dy, dx) pixels with zero padding."""
    if dx == 0 and dy == 0:
        return x
    h, w = x.shape[2], x.shape[3]
    pad = max(abs(dx), abs(dy))
    padded = x.pad2d(pad)
    top = pad + dy
    left = pad + dx
    return padded[:, :, top:top + h, left:left + w]


def adjust_brightness(x: Tensor, delta: float) -> Tensor:
    """Add a constant intensity offset."""
    return x + float(delta)


def adjust_contrast(x: Tensor, factor: float) -> Tensor:
    """Scale deviations from the per-sample mean intensity."""
    mean = x.mean(axis=(1, 2, 3), keepdims=True)
    return mean + (x - mean) * float(factor)


def scale_intensity(x: Tensor, factor: float) -> Tensor:
    """Multiply all intensities by a constant factor."""
    return x * float(factor)


def cutout(x: Tensor, top: int, left: int, size: int) -> Tensor:
    """Zero a square patch (same location for the whole batch)."""
    mask = np.ones(x.shape[2:], dtype=np.float32)
    mask[top:top + size, left:left + size] = 0.0
    return x * Tensor(mask[None, None])


@dataclass(frozen=True)
class AugmentationParams:
    """One concrete augmentation draw, applied identically to both batches."""

    flip: bool
    dx: int
    dy: int
    brightness: float
    contrast: float
    cutout_top: int
    cutout_left: int
    cutout_size: int


def sample_augmentation(image_size: int,
                        rng: int | np.random.Generator | None, *,
                        max_shift_frac: float = 0.125,
                        brightness_range: float = 0.3,
                        contrast_range: float = 0.3,
                        cutout_frac: float = 0.25,
                        cutout_prob: float = 0.5) -> AugmentationParams:
    """Draw random augmentation parameters for a given image size."""
    rng = to_rng(rng)
    max_shift = max(1, int(round(image_size * max_shift_frac)))
    size = int(round(image_size * cutout_frac)) if rng.random() < cutout_prob else 0
    if size > 0:
        top = int(rng.integers(0, image_size - size + 1))
        left = int(rng.integers(0, image_size - size + 1))
    else:
        top = left = 0
    return AugmentationParams(
        flip=bool(rng.random() < 0.5),
        dx=int(rng.integers(-max_shift, max_shift + 1)),
        dy=int(rng.integers(-max_shift, max_shift + 1)),
        brightness=float(rng.uniform(-brightness_range, brightness_range)),
        contrast=float(rng.uniform(1.0 - contrast_range, 1.0 + contrast_range)),
        cutout_top=top, cutout_left=left, cutout_size=size,
    )


def apply_augmentation(x: Tensor, params: AugmentationParams) -> Tensor:
    """Apply one augmentation draw to an NCHW batch, differentiably."""
    out = x
    if params.flip:
        out = flip_horizontal(out)
    out = translate(out, params.dx, params.dy)
    out = adjust_contrast(out, params.contrast)
    out = adjust_brightness(out, params.brightness)
    if params.cutout_size > 0:
        out = cutout(out, params.cutout_top, params.cutout_left, params.cutout_size)
    return out
