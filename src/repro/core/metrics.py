"""Continual-learning metrics: per-class accuracy and forgetting.

The paper reports final average accuracy and learning curves; these helpers
add the standard continual-learning diagnostics used to *explain* those
numbers — how accuracy distributes over classes, how much previously
acquired class knowledge is lost as the stream moves on, and how smooth a
learning trajectory is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import Module
from .training import predict_logits

__all__ = ["per_class_accuracy", "ForgettingTracker", "forgetting_score",
           "accuracy_smoothness"]


def per_class_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Accuracy per class; NaN for classes absent from the test set."""
    predictions = predict_logits(model, x).argmax(axis=1)
    y = np.asarray(y)
    out = np.full(num_classes, np.nan)
    for c in range(num_classes):
        members = y == c
        if members.any():
            out[c] = float((predictions[members] == c).mean())
    return out


def forgetting_score(history: np.ndarray) -> float:
    """Mean forgetting over a (T, C) per-class accuracy history.

    For each class, forgetting is the gap between its *best* accuracy at
    any earlier evaluation and its *final* accuracy (Chaudhry et al.);
    the score averages over classes that were ever learned.  0 means no
    forgetting; larger is worse.
    """
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2 or history.shape[0] < 2:
        raise ValueError("need a (T>=2, C) accuracy history")
    prior = history[:-1]
    # Classes never evaluated (all-NaN columns) are excluded below; guard
    # them here so nanmax does not warn.
    never_seen = np.isnan(prior).all(axis=0)
    best_before_final = np.nanmax(
        np.where(np.isnan(prior), -np.inf, prior), axis=0)
    best_before_final[never_seen] = np.nan
    final = history[-1]
    gaps = best_before_final - final
    valid = ~np.isnan(gaps)
    if not valid.any():
        return 0.0
    return float(np.clip(gaps[valid], 0.0, None).mean())


def accuracy_smoothness(accuracies: np.ndarray) -> float:
    """Mean absolute step change of an accuracy trace (lower = smoother).

    Quantifies the paper's observation that DECO's learning curve is
    "smoother across all datasets" than the baselines'.
    """
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if accuracies.size < 2:
        return 0.0
    return float(np.abs(np.diff(accuracies)).mean())


@dataclass
class ForgettingTracker:
    """Accumulates per-class accuracy snapshots during a streaming run.

    Call :meth:`observe` at every evaluation point; read
    :attr:`forgetting` / :attr:`history` at the end.
    """

    num_classes: int
    snapshots: list[np.ndarray] = field(default_factory=list)

    def observe(self, model: Module, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Record (and return) the current per-class accuracy."""
        snapshot = per_class_accuracy(model, x, y, self.num_classes)
        self.snapshots.append(snapshot)
        return snapshot

    @property
    def history(self) -> np.ndarray:
        """(T, C) matrix of the recorded snapshots."""
        if not self.snapshots:
            raise ValueError("no snapshots recorded")
        return np.stack(self.snapshots)

    @property
    def forgetting(self) -> float:
        """Current forgetting score over the recorded snapshots."""
        return forgetting_score(self.history)
