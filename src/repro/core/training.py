"""Model training and evaluation loops.

The deployed model is (re)trained on buffer contents every ``beta`` stream
segments with SGD + momentum and weight decay 5e-4, the setup reported in
§IV-A3.  These helpers are also used for the offline pre-training phase.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Module
from ..nn.losses import accuracy, cross_entropy
from ..nn.optim import SGD
from ..nn.tensor import Tensor, no_grad
from ..utils.batching import iterate_minibatches
from ..utils.rng import to_rng

__all__ = ["train_model", "evaluate_accuracy", "predict_logits"]


def train_model(model: Module, x: np.ndarray, y: np.ndarray, *,
                epochs: int, lr: float = 1e-3, momentum: float = 0.9,
                weight_decay: float = 5e-4, batch_size: int = 128,
                weights: np.ndarray | None = None,
                max_steps: int | None = None,
                rng: int | np.random.Generator | None = None) -> float:
    """Train ``model`` on a labeled array dataset; returns the final mean loss.

    Matches the paper's optimizer settings (SGD with momentum, weight decay
    5e-4, batch size 128).  ``max_steps`` optionally caps the total number
    of SGD steps — a CPU-scale budget knob applied identically to every
    method (the paper trains a fixed 200 epochs on a GPU).
    """
    if len(x) == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = to_rng(rng)
    optimizer = SGD(model.parameters(), lr, momentum=momentum,
                    weight_decay=weight_decay)
    model.train()
    final_loss = 0.0
    steps = 0
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for idx in iterate_minibatches(len(x), batch_size, rng=rng):
            optimizer.zero_grad()
            logits = model(Tensor(x[idx]))
            batch_w = None if weights is None else weights[idx]
            loss = cross_entropy(logits, y[idx], weights=batch_w)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
            steps += 1
            if max_steps is not None and steps >= max_steps:
                return epoch_loss / max(batches, 1)
        final_loss = epoch_loss / max(batches, 1)
    return final_loss


def predict_logits(model: Module, x: np.ndarray,
                   batch_size: int = 512) -> np.ndarray:
    """Class logits for an array of inputs, without recording the graph."""
    outputs = []
    model.eval()
    with no_grad():
        for start in range(0, len(x), batch_size):
            outputs.append(model(Tensor(x[start:start + batch_size])).data)
    model.train()
    return np.concatenate(outputs) if outputs else np.empty((0, model.num_classes))


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                      batch_size: int = 512) -> float:
    """Top-1 accuracy of the model on a labeled test set."""
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty test set")
    return accuracy(predict_logits(model, x, batch_size), y)
