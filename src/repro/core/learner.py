"""On-device learner framework: the shared streaming loop.

A learner owns the deployed model and a buffer; the framework feeds it the
stream segment by segment, triggers a model update from the buffer every
``beta`` segments (Algorithm 1's ``t % beta == 0`` step), and records an
evaluation history (used for the Fig. 3 learning curves).
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..data.stream import Stream, StreamSegment
from ..nn import init
from ..nn.layers import Module
from ..utils.rng import to_rng
from .training import evaluate_accuracy, train_model

__all__ = ["LearnerConfig", "LearnerHistory", "OnDeviceLearner"]


@dataclass(frozen=True)
class LearnerConfig:
    """Shared on-device training hyper-parameters (§IV-A3).

    Attributes
    ----------
    beta:
        Model-update interval in segments (paper: 10).
    train_epochs:
        Epochs per model update on the buffer (paper: 200; scaled down in
        smoke profiles).
    lr / momentum / weight_decay / batch_size:
        SGD settings (paper: momentum SGD, wd 5e-4, batch 128; lr 1e-3 or
        1e-4 depending on the dataset).
    max_update_steps:
        Optional cap on SGD steps per model update, applied identically to
        every method; bounds the cost of updates on very large buffers
        (e.g. CIFAR-100 at IpC=50) on the CPU substrate.
    memory_budget_bytes:
        Declared on-device memory budget for the learner's persistent state
        (buffer payload + model parameters).  Purely observational: each
        segment's ``memory`` telemetry event reports the footprint against
        it and a breach bumps the ``memory.budget_exceeded`` counter — the
        run itself is never throttled.
    decode_factor:
        Linear resolution reduction of the condensed buffer's stored
        payload (DREAM-style factorized storage).  ``1`` stores full-
        resolution pixels; ``f > 1`` stores ``(C, ceil(H/f), ceil(W/f))``
        and decodes by bilinear upsample, fitting ``f**2`` more images per
        class in the same byte budget.  Only meaningful for the DECO
        learner's :class:`~repro.buffer.FactorizedSyntheticBuffer`.
    """

    beta: int = 10
    train_epochs: int = 30
    lr: float = 1e-3
    momentum: float = 0.9
    weight_decay: float = 5e-4
    batch_size: int = 128
    max_update_steps: int | None = None
    memory_budget_bytes: int | None = None
    decode_factor: int = 1

    def __post_init__(self) -> None:
        if self.beta < 1:
            raise ValueError("beta must be >= 1")
        if self.train_epochs < 1:
            raise ValueError("train_epochs must be >= 1")
        if self.decode_factor < 1:
            raise ValueError("decode_factor must be >= 1")


@dataclass
class LearnerHistory:
    """Evaluation trace collected while streaming.

    ``samples_seen`` and ``accuracy`` are parallel arrays — exactly the axes
    of Fig. 3.  ``diagnostics`` accumulates per-segment learner stats
    (pseudo-label accuracy, retention, matching loss, ...).
    """

    samples_seen: list[int] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    diagnostics: list[dict] = field(default_factory=list)

    def record_eval(self, samples: int, acc: float) -> None:
        self.samples_seen.append(int(samples))
        self.accuracy.append(float(acc))

    @property
    def final_accuracy(self) -> float:
        if not self.accuracy:
            raise ValueError("no evaluations recorded")
        return self.accuracy[-1]


def _model_nbytes(model: Module) -> int:
    """Parameter payload bytes of one network."""
    return sum(p.data.nbytes for p in model.parameters())


class OnDeviceLearner(abc.ABC):
    """Base class wiring a model + buffer into the streaming loop."""

    def __init__(self, model: Module, config: LearnerConfig,
                 rng: int | np.random.Generator | None = None) -> None:
        self.model = model
        self.config = config
        self.rng = to_rng(rng)
        self._scratch: Module | None = None
        obs.track_object("model.params", self, _model_nbytes(model))

    # -- subclass responsibilities ------------------------------------------
    @abc.abstractmethod
    def observe_segment(self, segment: StreamSegment) -> dict:
        """Consume one stream segment; return diagnostics for the history."""

    @abc.abstractmethod
    def training_set(self) -> tuple[np.ndarray, np.ndarray]:
        """Current buffer contents as (images, labels) for model updates."""

    # -- shared machinery -----------------------------------------------------
    def model_factory(self, rng: np.random.Generator) -> Module:
        """Return a freshly randomized copy of the deployed architecture.

        A single scratch network is reused across calls; only its weights
        are re-drawn (Algorithm 1's per-iteration model randomization).
        """
        if self._scratch is None:
            self._scratch = copy.deepcopy(self.model)
            obs.track_object("model.params", self._scratch,
                             _model_nbytes(self._scratch))
        init.reinitialize(self._scratch, rng)
        return self._scratch

    # -- memory accounting ---------------------------------------------------
    def buffer_nbytes(self) -> int:
        """Bytes of the learner's persistent sample store.

        Delegates to the buffer's own ``memory_bytes`` — the single
        byte-accounting definition shared with the memory ledger and the
        table1 Acc/MiB column — so factorized storage reports its reduced
        payload, not the decoded view.  Buffers without a ``memory_bytes``
        fall back to reflection over ``images``/``labels``/``aux``;
        learners with a different store override this.
        """
        buffer = getattr(self, "buffer", None)
        if buffer is None:
            return 0
        reported = getattr(buffer, "memory_bytes", None)
        if reported is not None:
            return int(reported)
        total = 0
        for name in ("images", "labels"):
            arr = getattr(buffer, name, None)
            if arr is not None:
                total += int(arr.nbytes)
        aux = getattr(buffer, "aux", None)
        if isinstance(aux, dict):
            total += sum(int(v.nbytes) for v in aux.values())
        return total

    def memory_footprint(self) -> dict[str, int]:
        """Byte footprint of the learner's persistent on-device state.

        ``buffer_bytes`` + deployed-model ``model_bytes`` — the quantities
        the paper's memory budget constrains (the condensation scratch
        network and transient workspace live in the ledger's other
        accounts).  ``peak_bytes`` folds in the process-wide tracked
        high-water mark, so a segment that transiently doubled tracked
        memory is visible even in the per-run report.
        """
        buffer_bytes = self.buffer_nbytes()
        model_bytes = _model_nbytes(self.model)
        total = buffer_bytes + model_bytes
        return {
            "buffer_bytes": buffer_bytes,
            "model_bytes": model_bytes,
            "total_bytes": total,
            "peak_bytes": max(obs.default_ledger.high_water_bytes, total),
        }

    # -- checkpointing ---------------------------------------------------
    def _extra_state(self) -> dict[str, np.ndarray]:
        """Subclass hook: additional arrays to checkpoint (e.g. the buffer)."""
        return {}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        """Subclass hook: restore arrays produced by :meth:`_extra_state`."""

    def checkpoint(self) -> dict[str, np.ndarray]:
        """Snapshot the deployed model (and subclass state) as flat arrays.

        Suitable for :func:`repro.utils.save_array_dict`; restores with
        :meth:`restore`.
        """
        state = {f"model.{name}": value
                 for name, value in self.model.state_dict().items()}
        for name, value in self._extra_state().items():
            state[f"extra.{name}"] = value
        return state

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`checkpoint`."""
        model_state = {name[len("model."):]: value
                       for name, value in state.items()
                       if name.startswith("model.")}
        self.model.load_state_dict(model_state)
        self._load_extra_state({name[len("extra."):]: value
                                for name, value in state.items()
                                if name.startswith("extra.")})

    def update_model(self) -> None:
        """Retrain the deployed model on the current buffer contents."""
        x, y = self.training_set()
        if len(x) == 0:
            return
        train_model(self.model, x, y, epochs=self.config.train_epochs,
                    lr=self.config.lr, momentum=self.config.momentum,
                    weight_decay=self.config.weight_decay,
                    batch_size=self.config.batch_size,
                    max_steps=self.config.max_update_steps, rng=self.rng)

    def run(self, stream: Stream, *, x_test: np.ndarray | None = None,
            y_test: np.ndarray | None = None,
            eval_every: int | None = None,
            checkpoint_every: int | None = None,
            checkpoint_dir=None,
            resume: bool = False) -> LearnerHistory:
        """Stream all segments through the learner.

        Parameters
        ----------
        stream:
            The non-i.i.d. input stream.
        x_test, y_test:
            Held-out evaluation data (required if ``eval_every`` is set or a
            final accuracy is wanted).
        eval_every:
            Evaluate every this many segments (for learning curves); the
            final state is always evaluated when test data is given.
        checkpoint_every / checkpoint_dir:
            Snapshot the learner (model, subclass state, RNG state,
            history, loop cursor) into ``checkpoint_dir`` every
            ``checkpoint_every`` segments, via
            :mod:`repro.persist.learner_io`.
        resume:
            Continue from the newest readable checkpoint in
            ``checkpoint_dir`` (no-op when there is none): already-consumed
            segments of the deterministic stream are skipped and all state
            is restored in place, so a killed-and-resumed run is
            bit-identical to an uninterrupted one for learners whose
            :meth:`checkpoint` captures their full state (DECO and the
            upper bound do; replay selection strategies keeping private
            cursors outside the buffer resume approximately).
        """
        can_eval = x_test is not None and y_test is not None
        if eval_every is not None and not can_eval:
            raise ValueError("eval_every requires x_test and y_test")
        if (checkpoint_every is not None or resume) and checkpoint_dir is None:
            raise ValueError("checkpoint_every/resume require checkpoint_dir")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

        history = LearnerHistory()
        samples_seen = 0
        trained_at = -1
        start_index = 0
        if resume:
            from ..persist import latest_learner_checkpoint, restore_learner
            ckpt = latest_learner_checkpoint(checkpoint_dir)
            if ckpt is not None:
                cursor = restore_learner(self, ckpt, history)
                start_index = cursor["segment_index"] + 1
                samples_seen = cursor["samples_seen"]
                trained_at = cursor["trained_at"]
                obs.event("resume", segment=cursor["segment_index"],
                          samples_seen=samples_seen)
        monitor = obs.get_monitor()
        for segment in stream:
            if segment.index < start_index:
                continue  # fast-forward a resumed run past consumed segments
            # Health incidents fired anywhere in this segment's work —
            # matcher passes, optimizer updates — carry its index.
            with monitor.segment_scope(segment.index):
                with obs.span("segment", segment=segment.index):
                    diag = self.observe_segment(segment)
                samples_seen += len(segment)
                retrained = (segment.index + 1) % self.config.beta == 0
                if retrained:
                    with obs.span("retrain", segment=segment.index):
                        self.update_model()
                    trained_at = segment.index
            if diag:
                diag["segment"] = segment.index
                history.diagnostics.append(diag)
            if obs.enabled():
                fields = {k: v for k, v in (diag or {}).items()
                          if k != "segment"}
                obs.event("segment", segment=segment.index,
                          samples_seen=samples_seen, retrain=retrained,
                          **fields)
                foot = self.memory_footprint()
                budget = self.config.memory_budget_bytes
                budget_ok = (budget is None
                             or foot["total_bytes"] <= budget)
                if not budget_ok:
                    obs.counter("memory.budget_exceeded")
                obs.event("memory", segment=segment.index,
                          budget_bytes=budget, budget_ok=budget_ok, **foot)
                obs.default_ledger.maybe_sample_rss()
            if (eval_every is not None
                    and (segment.index + 1) % eval_every == 0):
                history.record_eval(
                    samples_seen, evaluate_accuracy(self.model, x_test, y_test))
                obs.event("eval", segment=segment.index,
                          samples_seen=samples_seen,
                          accuracy=history.accuracy[-1])
            if (checkpoint_every is not None
                    and (segment.index + 1) % checkpoint_every == 0):
                from ..persist import save_learner_checkpoint
                with obs.span("checkpoint", segment=segment.index):
                    save_learner_checkpoint(
                        checkpoint_dir, self, segment_index=segment.index,
                        samples_seen=samples_seen, trained_at=trained_at,
                        history=history)
        # Fold in any segments after the last scheduled update, then do the
        # final evaluation the paper's "final average accuracy" reports.
        if trained_at != len(stream) - 1:
            with monitor.segment_scope(len(stream) - 1):
                with obs.span("retrain", segment=len(stream) - 1):
                    self.update_model()
        if can_eval:
            history.record_eval(samples_seen,
                                evaluate_accuracy(self.model, x_test, y_test))
            obs.event("eval", segment=len(stream) - 1,
                      samples_seen=samples_seen,
                      accuracy=history.accuracy[-1])
        if obs.enabled():
            obs.collect_runtime_counters()
        return history
