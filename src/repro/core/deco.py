"""The DECO learner (Algorithm 1) and offline buffer initialization.

Per segment: pseudo-label + majority vote (§III-B), condense the active
samples into the synthetic buffer (§III-C) with feature discrimination
(§III-D), and every ``beta`` segments retrain the deployed model on the
buffer.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..buffer.buffer import SyntheticBuffer
from ..condensation.base import CondensationMethod, ModelFactory
from ..condensation.one_step import OneStepMatcher
from ..data.stream import StreamSegment
from ..nn.layers import Module
from ..utils.rng import to_rng
from .learner import LearnerConfig, OnDeviceLearner
from .pseudo_label import MajorityVotePseudoLabeler

__all__ = ["DECOLearner", "condense_offline"]


def condense_offline(buffer: SyntheticBuffer, x: np.ndarray, y: np.ndarray, *,
                     condenser: CondensationMethod,
                     model_factory: ModelFactory,
                     rounds: int = 1,
                     rng: int | np.random.Generator | None = None) -> None:
    """Initialize the buffer by condensing *labeled* data offline.

    The paper initializes the on-device buffer with data "condensed using
    such labeled data in offline settings" — i.e. the pre-training set with
    ground-truth labels, all classes active, unit confidence weights.
    """
    rng = to_rng(rng)
    buffer.init_from_samples(x, y, rng=rng)
    all_classes = list(range(buffer.num_classes))
    for _ in range(rounds):
        condenser.condense(buffer, all_classes, x, np.asarray(y, dtype=np.int64),
                           None, model_factory=model_factory, rng=rng)


class DECOLearner(OnDeviceLearner):
    """On-device learner maintaining a condensed synthetic buffer.

    Parameters
    ----------
    model:
        The deployed (pre-trained) model ``theta``.
    buffer:
        The synthetic buffer ``S`` (should already be initialized, e.g. via
        :func:`condense_offline`).
    condenser:
        The condensation method (DECO's :class:`OneStepMatcher` by default;
        DC/DSA/DM can be swapped in for Table II).
    labeler:
        The majority-vote pseudo-labeler.
    config:
        Shared on-device training settings.
    """

    def __init__(self, model: Module, buffer: SyntheticBuffer, *,
                 condenser: CondensationMethod | None = None,
                 labeler: MajorityVotePseudoLabeler | None = None,
                 config: LearnerConfig = LearnerConfig(),
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__(model, config, rng)
        self.buffer = buffer
        self.condenser = condenser or OneStepMatcher()
        self.labeler = labeler or MajorityVotePseudoLabeler()
        # Condensation-quality cursors (diagnostic only — deliberately not
        # checkpointed): per-class condense counts and the segment of each
        # class's last update, feeding the ``quality`` telemetry events.
        self._class_updates = np.zeros(buffer.num_classes, dtype=np.int64)
        self._class_last_update = np.full(buffer.num_classes, -1,
                                          dtype=np.int64)

    def _quality_event(self, segment: StreamSegment, result, before,
                       active_rows: np.ndarray, stats) -> None:
        """Per-segment condensation-quality accounts (telemetry only).

        Per active class: pseudo-label precision against the stream's
        hidden ground truth, kept-sample count, slot age (segments since
        the class's previous condense), cumulative update count, and the
        L2 drift of its slot block this segment; plus the buffer-wide slot
        occupancy (share of class blocks ever condensed) and the matcher's
        real/synthetic gradient cosine.
        """
        classes = sorted(int(c) for c in result.active_classes)
        kept_labels = result.labels[result.keep]
        kept_truth = segment.hidden_labels[result.keep]
        precision, kept_counts, ages, updates, drifts = [], [], [], [], []
        ipc = self.buffer.ipc
        for pos, c in enumerate(classes):
            mask = kept_labels == c
            kept_counts.append(int(mask.sum()))
            precision.append(float((kept_truth[mask] == c).mean())
                             if mask.any() else float("nan"))
            last = int(self._class_last_update[c])
            ages.append(segment.index - last if last >= 0 else -1)
            updates.append(int(self._class_updates[c]) + 1)
            if before is not None:
                block = slice(pos * ipc, (pos + 1) * ipc)
                drifts.append(float(np.linalg.norm(
                    self.buffer.images[active_rows][block] - before[block])))
            else:
                drifts.append(float("nan"))
        occupied = self._class_updates > 0
        occupied[classes] = True  # this segment's update counts
        occupancy = float(occupied.mean())
        obs.counter("quality.segments")
        obs.event("quality", segment=segment.index, classes=classes,
                  precision=precision, kept=kept_counts, ages=ages,
                  updates=updates, drift_l2=drifts,
                  slots_per_class=ipc, occupancy=occupancy,
                  grad_cosine=stats.extra.get("grad_cosine", float("nan")),
                  health_skipped=stats.extra.get("health_skipped", 0))

    def _vote_margin(self, result) -> float:
        """Tightest active-class margin over the voting threshold (Eq. 2).

        The smallest ``share - m`` among active classes: how close the
        weakest elected class came to being filtered out.  NaN when no
        class is active or the labeler has no single threshold.
        """
        threshold = getattr(self.labeler, "threshold", None)
        if not result.active_classes or threshold is None or not len(result.labels):
            return float("nan")
        shares = (np.bincount(result.labels, minlength=self.model.num_classes)
                  / len(result.labels))
        return float(min(shares[c] for c in result.active_classes) - threshold)

    def observe_segment(self, segment: StreamSegment) -> dict:
        with obs.span("pseudo_label", segment=segment.index):
            result = self.labeler.label_segment(self.model, segment.images)
        correct = result.labels == segment.hidden_labels
        diag = {
            "retained_fraction": result.retained_fraction,
            "active_classes": result.active_classes,
            "pseudo_labels_total": int(len(result.labels)),
            "pseudo_labels_kept": int(result.keep.sum()),
            "vote_margin": self._vote_margin(result),
            "pseudo_label_accuracy": float(correct.mean()) if len(segment) else 0.0,
            # Accuracy of the labels that survive majority-vote filtering —
            # the "pseudo-labeling accuracy" curve of Fig. 4a.
            "retained_label_accuracy": float(correct[result.keep].mean())
            if result.keep.any() else float("nan"),
        }
        if result.active_classes:
            keep = result.keep
            active_rows = self.buffer.indices_for_classes(result.active_classes)
            # Buffer drift is diagnostic-only; skip the snapshot copy unless
            # telemetry is on so the disabled hot path stays allocation-free.
            before = (self.buffer.images[active_rows].copy()
                      if obs.enabled() else None)
            with obs.span("condense", segment=segment.index):
                stats = self.condenser.condense(
                    self.buffer, result.active_classes,
                    segment.images[keep], result.labels[keep],
                    result.confidences[keep],
                    model_factory=self.model_factory, rng=self.rng,
                    deployed_model=self.model)
            diag["matching_loss"] = stats.matching_loss
            diag["condense_passes"] = stats.forward_backward_passes
            if "grad_cosine" in stats.extra:
                diag["grad_cosine"] = stats.extra["grad_cosine"]
            if "discrimination_loss" in stats.extra:
                diag["discrimination_loss"] = stats.extra["discrimination_loss"]
                # Unwrap delegating wrappers (e.g. TimedCondenser) for alpha.
                inner = getattr(self.condenser, "inner", self.condenser)
                diag["alpha"] = getattr(inner, "alpha", None)
            if before is not None:
                diag["buffer_drift_l2"] = float(np.linalg.norm(
                    self.buffer.images[active_rows] - before))
            if obs.enabled():
                self._quality_event(segment, result, before, active_rows,
                                    stats)
            # Cursor bump after the event so its ages/updates reflect the
            # state up to and including this segment.
            for c in result.active_classes:
                self._class_updates[c] += 1
                self._class_last_update[c] = segment.index
        return diag

    def training_set(self) -> tuple[np.ndarray, np.ndarray]:
        return self.buffer.as_training_set()

    def _extra_state(self) -> dict[str, np.ndarray]:
        state = {"buffer_images": self.buffer.images.copy(),
                 "buffer_labels": self.buffer.labels.copy()}
        factor = getattr(self.buffer, "decode_factor", 1)
        if factor != 1:
            # Stored payload is reduced-resolution; stamp the factor so a
            # resume into a mismatched buffer geometry fails loudly instead
            # of reinterpreting the pixels.
            state["buffer_decode_factor"] = np.asarray(factor, dtype=np.int64)
        return state

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        factor = int(state.get("buffer_decode_factor", 1))
        if factor != getattr(self.buffer, "decode_factor", 1):
            raise ValueError(
                f"checkpoint buffer decode-factor mismatch: snapshot has "
                f"f={factor}, learner buffer has "
                f"f={getattr(self.buffer, 'decode_factor', 1)}")
        if state["buffer_images"].shape != self.buffer.images.shape:
            raise ValueError("checkpoint buffer shape mismatch")
        labels = state.get("buffer_labels")
        if labels is not None and not np.array_equal(labels,
                                                     self.buffer.labels):
            raise ValueError("checkpoint buffer label layout mismatch")
        self.buffer.images[:] = state["buffer_images"]
