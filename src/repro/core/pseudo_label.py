"""Majority-voting pseudo-label assignment (§III-B).

The deployed model labels each unlabeled sample of a stream segment; a
sliding window (set equal to the segment, as in the paper) counts the
pseudo-label frequency of every class, and classes whose share exceeds the
threshold ``m`` are *active* (Eq. 2).  Samples whose pseudo-label is not an
active class are discarded (Eq. 3) — temporal correlation means such
minority labels are likely mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.layers import Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["PseudoLabelResult", "predict_with_confidence",
           "MajorityVotePseudoLabeler"]


@dataclass(frozen=True)
class PseudoLabelResult:
    """Outcome of labeling one segment.

    Attributes
    ----------
    labels:
        (B,) pseudo-labels for every segment sample.
    confidences:
        (B,) softmax probability of the assigned label (the ``w_i`` weights
        of Eq. 4).
    active_classes:
        Classes passing the majority-vote threshold (Eq. 2).
    keep:
        (B,) boolean mask — True where the sample's pseudo-label is active
        (the ``I_t^A`` filter of Eq. 3).
    """

    labels: np.ndarray
    confidences: np.ndarray
    active_classes: tuple[int, ...]
    keep: np.ndarray

    @property
    def retained_fraction(self) -> float:
        """Share of the segment that survives filtering (Fig. 4a metric)."""
        return float(self.keep.mean()) if self.keep.size else 0.0


def predict_with_confidence(model: Module, images: np.ndarray,
                            batch_size: int = 256
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Model predictions and their softmax confidences, graph-free."""
    labels, confidences = [], []
    with no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start:start + batch_size]))
            probs = F.softmax(logits, axis=1).data
            idx = probs.argmax(axis=1)
            labels.append(idx)
            confidences.append(probs[np.arange(len(idx)), idx])
    return (np.concatenate(labels).astype(np.int64),
            np.concatenate(confidences).astype(np.float32))


class MajorityVotePseudoLabeler:
    """Assigns pseudo-labels and filters them by in-window majority voting.

    Parameters
    ----------
    threshold:
        ``m`` — minimum share of the window a class must hold to count as
        active (paper default 0.4).
    window_size:
        Size of the voting window.  ``None`` (the paper's simplification)
        uses the whole segment as one window.  A smaller window votes over
        consecutive chunks of the segment, which handles segments that
        straddle a class transition: each chunk elects its own active
        classes and samples are kept only if active within *their* chunk.
    """

    def __init__(self, threshold: float = 0.4,
                 window_size: int | None = None) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError("threshold must be in [0, 1)")
        if window_size is not None and window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.threshold = float(threshold)
        self.window_size = window_size

    def _vote(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        """Active classes of one window (Eq. 2)."""
        shares = np.bincount(labels, minlength=num_classes) / len(labels)
        return np.flatnonzero(shares > self.threshold)

    def label_segment(self, model: Module,
                      images: np.ndarray) -> PseudoLabelResult:
        """Label one segment and identify its active classes."""
        if len(images) == 0:
            return PseudoLabelResult(
                labels=np.empty(0, dtype=np.int64),
                confidences=np.empty(0, dtype=np.float32),
                active_classes=(), keep=np.empty(0, dtype=bool))
        labels, confidences = predict_with_confidence(model, images)
        window = self.window_size or len(labels)
        active: set[int] = set()
        keep = np.zeros(len(labels), dtype=bool)
        for start in range(0, len(labels), window):
            chunk = slice(start, start + window)
            chunk_active = self._vote(labels[chunk], model.num_classes)
            active.update(int(c) for c in chunk_active)
            keep[chunk] = np.isin(labels[chunk], chunk_active)
        return PseudoLabelResult(labels=labels, confidences=confidences,
                                 active_classes=tuple(sorted(active)),
                                 keep=keep)
