"""DECO core: pseudo-labeling, learners, and training/evaluation loops."""

from .deco import DECOLearner, condense_offline
from .learner import LearnerConfig, LearnerHistory, OnDeviceLearner
from .metrics import (ForgettingTracker, accuracy_smoothness,
                      forgetting_score, per_class_accuracy)
from .pseudo_label import (MajorityVotePseudoLabeler, PseudoLabelResult,
                           predict_with_confidence)
from .replay import ReplayLearner, UpperBoundLearner
from .training import evaluate_accuracy, predict_logits, train_model

__all__ = [
    "MajorityVotePseudoLabeler", "PseudoLabelResult", "predict_with_confidence",
    "LearnerConfig", "LearnerHistory", "OnDeviceLearner",
    "DECOLearner", "condense_offline",
    "ReplayLearner", "UpperBoundLearner",
    "train_model", "evaluate_accuracy", "predict_logits",
    "per_class_accuracy", "forgetting_score", "accuracy_smoothness",
    "ForgettingTracker",
]
