"""Replay learner for the selection baselines (Table I columns 1-5).

Runs the same on-device loop as DECO — same stream, same pseudo-labeling by
the deployed model, same periodic retraining — but maintains a raw-sample
buffer with one of the selection strategies instead of condensing.
"""

from __future__ import annotations

import numpy as np

from ..buffer.buffer import RawBuffer
from ..buffer.selection import SelectionStrategy
from ..data.stream import StreamSegment
from ..nn.layers import Module
from .learner import LearnerConfig, OnDeviceLearner
from .pseudo_label import predict_with_confidence

__all__ = ["ReplayLearner", "UpperBoundLearner"]


class ReplayLearner(OnDeviceLearner):
    """Selection-based rehearsal: store raw pseudo-labeled stream samples."""

    def __init__(self, model: Module, buffer: RawBuffer,
                 strategy: SelectionStrategy, *,
                 config: LearnerConfig = LearnerConfig(),
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__(model, config, rng)
        self.buffer = buffer
        self.strategy = strategy

    def observe_segment(self, segment: StreamSegment) -> dict:
        labels, confidences = predict_with_confidence(self.model, segment.images)
        self.strategy.process_segment(self.buffer, segment.images, labels,
                                      confidences, model=self.model,
                                      rng=self.rng)
        return {
            "pseudo_label_accuracy": float(
                (labels == segment.hidden_labels).mean()) if len(segment) else 0.0,
            "buffer_fill": len(self.buffer) / self.buffer.capacity,
        }

    def training_set(self) -> tuple[np.ndarray, np.ndarray]:
        return self.buffer.as_training_set()

    def _extra_state(self) -> dict[str, np.ndarray]:
        state = {f"buffer.{key}": value
                 for key, value in self.buffer.state_dict().items()}
        state.update({f"strategy.{key}": value
                      for key, value in self.strategy.state_dict().items()})
        return state

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        # Restores buffer contents + fill counters AND the strategy's
        # private cursors (FIFO slot pointer, GSS gradient embeddings,
        # herding candidate pools), so a resumed replay run is bit-exact,
        # not just faithful in buffer contents.  Checkpoints from before
        # strategies persisted state simply have no ``strategy.*`` keys.
        self.buffer.load_state_dict(
            {key[len("buffer."):]: value for key, value in state.items()
             if key.startswith("buffer.")})
        self.strategy.load_state_dict(
            {key[len("strategy."):]: value for key, value in state.items()
             if key.startswith("strategy.")})


class UpperBoundLearner(OnDeviceLearner):
    """Oracle with an unlimited buffer and ground-truth labels.

    Produces the "Upper Bound" column of Table I: the end accuracy
    achievable if the device could store the entire stream, labeled.
    """

    def __init__(self, model: Module, *,
                 config: LearnerConfig = LearnerConfig(),
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__(model, config, rng)
        self._images: list[np.ndarray] = []
        self._labels: list[np.ndarray] = []

    def observe_segment(self, segment: StreamSegment) -> dict:
        self._images.append(segment.images)
        self._labels.append(segment.hidden_labels)
        return {}

    def buffer_nbytes(self) -> int:
        """The oracle's "buffer" is every retained segment."""
        return (sum(int(x.nbytes) for x in self._images)
                + sum(int(y.nbytes) for y in self._labels))

    def training_set(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._images:
            return (np.empty((0,)), np.empty((0,), dtype=np.int64))
        return np.concatenate(self._images), np.concatenate(self._labels)

    def _extra_state(self) -> dict[str, np.ndarray]:
        images, labels = self.training_set()
        return {"seen_images": images, "seen_labels": labels}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        images = state["seen_images"]
        labels = state["seen_labels"]
        self._images = [images.copy()] if len(images) else []
        self._labels = [labels.copy()] if len(labels) else []
